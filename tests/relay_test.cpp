// Tests for the relay-tree subsystem (PR 7): the util::fnv1a hash the
// ContentId scheme is built on, the protocol-v3 frame-by-reference wire
// forms, the FrameCache content index (plus step-arithmetic regressions),
// frame-ref delivery through the in-process hub, and the EdgeHub — a hub of
// hubs whose edges serve their own viewers from a content-addressed cache,
// so root egress scales with edges, not viewers. The RelayChaos suite
// replays edge death, upstream partition, and late-joiner catch-up under
// seeded fault plans (the CI chaos matrix re-runs it per TVVIZ_FAULT_SEED).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <climits>
#include <cstdlib>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "hub/frame_cache.hpp"
#include "hub/hub.hpp"
#include "hub/tcp_hub.hpp"
#include "net/errors.hpp"
#include "net/protocol.hpp"
#include "obs/counters.hpp"
#include "relay/relay.hpp"
#include "util/hash.hpp"

namespace tvviz {
namespace {

using hub::FrameCache;
using hub::FrameHub;
using hub::HubConfig;
using net::MsgType;
using net::NetMessage;
using relay::EdgeHub;
using relay::EdgeHubConfig;

std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("TVVIZ_FAULT_SEED"))
    return std::strtoull(env, nullptr, 10);
  return 1;
}

NetMessage frame_msg(int step, util::Bytes payload,
                     const std::string& codec = "raw") {
  NetMessage msg;
  msg.type = MsgType::kFrame;
  msg.frame_index = step;
  msg.codec = codec;
  msg.payload = std::move(payload);
  return msg;
}

/// A distinct, recognisable payload for one step.
util::Bytes step_payload(int step, std::size_t bytes = 64) {
  return util::Bytes(bytes, static_cast<std::uint8_t>(step + 1));
}

/// Generous retry policy for chaos runs: rides out an edge restart.
fault::RetryPolicy patient_retry() {
  fault::RetryPolicy retry;
  retry.max_attempts = 30;
  retry.base_delay_ms = 5.0;
  retry.max_delay_ms = 100.0;
  retry.io_timeout_ms = 2000.0;
  return retry;
}

// -------------------------------------------------------------- util hash --

TEST(Fnv1a, MatchesKnownVectors) {
  // Reference values of 64-bit FNV-1a (offset basis for the empty input).
  EXPECT_EQ(util::fnv1a(std::string_view{}), 0xcbf29ce484222325ULL);
  EXPECT_EQ(util::fnv1a(std::string_view{"a"}), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(util::fnv1a(std::string_view{"foobar"}), 0x85944171f73967e8ULL);
}

TEST(Fnv1a, SeedChainingEqualsConcatenation) {
  // fnv1a(b, fnv1a(a)) must equal fnv1a(a+b): the property content_id_of
  // relies on to hash codec-name bytes then payload bytes in one stream.
  const auto chained =
      util::fnv1a(std::string_view{"bar"}, util::fnv1a(std::string_view{"foo"}));
  EXPECT_EQ(chained, util::fnv1a(std::string_view{"foobar"}));
}

TEST(Fnv1a, SpanAndStringViewOverloadsAgree) {
  const std::uint8_t raw[] = {'j', 'p', 'e', 'g'};
  EXPECT_EQ(util::fnv1a(std::span<const std::uint8_t>(raw, 4)),
            util::fnv1a(std::string_view{"jpeg"}));
}

// ------------------------------------------------------------ protocol v3 --

TEST(ProtocolV3, FrameRefRoundTripMirrorsFrameHeader) {
  NetMessage frame;
  frame.type = MsgType::kSubImage;
  frame.frame_index = 42;
  frame.piece = 2;
  frame.piece_count = 4;
  frame.codec = "jpeg+lzo";
  frame.payload = util::Bytes{9, 8, 7, 6, 5};
  const net::ContentId content = net::content_id_of(frame);

  const NetMessage ref = net::make_frame_ref(frame, content);
  EXPECT_EQ(ref.type, MsgType::kFrameRef);
  // Header fields mirror the frame so step-level drop policies treat the
  // advertisement exactly like the frame it stands for.
  EXPECT_EQ(ref.frame_index, 42);
  EXPECT_EQ(ref.piece, 2);
  EXPECT_EQ(ref.piece_count, 4);
  EXPECT_EQ(ref.codec, "jpeg+lzo");
  EXPECT_LT(ref.payload.size(), 32u);  // no frame bytes travel with a ref

  const auto info = net::parse_frame_ref(ref);
  EXPECT_EQ(info.frame_type, MsgType::kSubImage);
  EXPECT_EQ(info.content, content);
  EXPECT_EQ(info.payload_bytes, 5u);
}

TEST(ProtocolV3, ParseFrameRefRejectsMalformed) {
  NetMessage frame = frame_msg(0, {1, 2, 3});
  EXPECT_THROW(net::parse_frame_ref(frame), net::WireError);  // not a ref

  auto ref = net::make_frame_ref(frame, net::content_id_of(frame));
  ref.payload = ref.payload.view(0, 3);  // truncated body
  EXPECT_THROW(net::parse_frame_ref(ref), net::WireError);

  // A ref advertising a non-image frame type must be refused: nothing else
  // is cacheable, so it can only be wire corruption.
  net::FrameRefInfo bogus;
  bogus.frame_type = MsgType::kShutdown;
  auto evil = net::make_frame_ref(frame, 7);
  evil.payload = bogus.serialize();
  EXPECT_THROW(net::parse_frame_ref(evil), net::WireError);
}

TEST(ProtocolV3, FrameFetchRoundTrip) {
  const net::ContentId content = 0x0123456789abcdefULL;
  const NetMessage fetch = net::make_frame_fetch(content);
  EXPECT_EQ(fetch.type, MsgType::kFrameFetch);
  EXPECT_EQ(net::parse_frame_fetch(fetch), content);

  NetMessage truncated = fetch;
  truncated.payload = truncated.payload.view(0, 4);
  EXPECT_THROW(net::parse_frame_fetch(truncated), net::WireError);
}

TEST(ProtocolV3, FrameDataSharesPayloadAndHashesIdentically) {
  NetMessage frame = frame_msg(3, util::Bytes(256, 0x5a), "lzo");
  const NetMessage data = net::make_frame_data(frame);
  EXPECT_EQ(data.type, MsgType::kFrameData);
  EXPECT_EQ(data.frame_index, 3);
  EXPECT_EQ(data.codec, "lzo");
  // The body is refcount-shared, never copied...
  EXPECT_TRUE(data.payload.shares_storage_with(frame.payload));
  // ...and the receiver can recompute the exact ContentId from it — the
  // integrity check the edge matches fetched bodies with.
  EXPECT_EQ(net::content_id_of(data), net::content_id_of(frame));
}

TEST(ProtocolV3, ContentIdDistinguishesCodecAndPayload) {
  const auto a = net::content_id_of(frame_msg(0, {1, 2, 3}, "raw"));
  const auto b = net::content_id_of(frame_msg(9, {1, 2, 3}, "raw"));
  const auto c = net::content_id_of(frame_msg(0, {1, 2, 3}, "lzo"));
  const auto d = net::content_id_of(frame_msg(0, {1, 2, 4}, "raw"));
  EXPECT_EQ(a, b);  // identity is content, never the step
  EXPECT_NE(a, c);  // same bytes under another codec decode differently
  EXPECT_NE(a, d);
}

TEST(ProtocolV3, HelloCarriesWantsFrameRefsAndStaysV2Compatible) {
  net::HelloInfo info;
  info.role = "display";
  info.wants_frame_refs = true;
  const auto echoed = net::parse_hello(net::make_hello(info));
  EXPECT_TRUE(echoed.wants_frame_refs);
  EXPECT_EQ(echoed.version, net::kProtocolVersion);

  // A v2 hello lacks both capability trailing bytes (v3 wants_frame_refs,
  // v4 wants_depth); the parser must default the capabilities off rather
  // than reject the older payload.
  auto v2 = net::make_hello(info);
  v2.payload = v2.payload.view(0, v2.payload.size() - 2);
  EXPECT_FALSE(net::parse_hello(v2).wants_frame_refs);
  EXPECT_FALSE(net::parse_hello(v2).wants_depth);

  // A v3 hello carries wants_frame_refs but stops short of wants_depth.
  auto v3 = net::make_hello(info);
  v3.payload = v3.payload.view(0, v3.payload.size() - 1);
  EXPECT_TRUE(net::parse_hello(v3).wants_frame_refs);
  EXPECT_FALSE(net::parse_hello(v3).wants_depth);
}

// --------------------------------------------------- FrameCache content ----

TEST(FrameCacheContent, IdenticalPayloadsShareOneIndexEntry) {
  FrameCache cache(8);
  const auto first = cache.insert(0, frame_msg(0, util::Bytes(32, 7)));
  const auto second = cache.insert(1, frame_msg(1, util::Bytes(32, 7)));
  EXPECT_EQ(first.content, second.content);
  EXPECT_EQ(cache.content_entries(), 1u);

  const auto hit = cache.lookup_content(first.content);
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->payload.size(), 32u);

  cache.insert(2, frame_msg(2, util::Bytes(32, 8)));
  EXPECT_EQ(cache.content_entries(), 2u);
}

TEST(FrameCacheContent, SharedContentSurvivesPartialEviction) {
  FrameCache cache(2);
  const auto kept = cache.insert(0, frame_msg(0, util::Bytes(16, 1)));
  cache.insert(1, frame_msg(1, util::Bytes(16, 1)));  // same content
  cache.insert(2, frame_msg(2, util::Bytes(16, 2)));  // evicts step 0
  EXPECT_TRUE(cache.lookup(0).empty());
  // Step 1 still advertises this content: the index must not forget it
  // just because one of the two steps aged out.
  EXPECT_TRUE(cache.lookup_content(kept.content));

  cache.insert(3, frame_msg(3, util::Bytes(16, 3)));  // evicts step 1 too
  EXPECT_FALSE(cache.lookup_content(kept.content));
  EXPECT_EQ(cache.content_entries(), 2u);  // steps 2 and 3
}

TEST(FrameCacheContent, MissesAreCounted) {
  FrameCache cache(2);
  const auto before = obs::counter("net.hub.cache.content_misses").value();
  EXPECT_FALSE(cache.lookup_content(0xdeadbeefULL));
  EXPECT_EQ(obs::counter("net.hub.cache.content_misses").value(), before + 1);
}

// Regression: messages_after computed the evicted-step gap with int
// arithmetic — messages_after(INT_MAX) on a warm cache and resume points
// far below the oldest cached step both overflowed. The gap is clamped
// 64-bit arithmetic now.
TEST(FrameCacheRegression, MessagesAfterExtremeStepsDoNotOverflow) {
  FrameCache cache(2);
  for (int s = 0; s < 4; ++s) cache.insert(s, frame_msg(s, {1}));
  EXPECT_TRUE(cache.messages_after(INT_MAX).empty());
  EXPECT_TRUE(cache.messages_after(cache.newest_step().value()).empty());
  const auto all = cache.messages_after(INT_MIN);
  ASSERT_EQ(all.size(), 2u);  // steps 2 and 3 survive a capacity-2 ring
  EXPECT_EQ(all[0]->frame_index, 2);
  EXPECT_EQ(all[1]->frame_index, 3);
}

TEST(FrameCacheRegression, CapacityOneRingStaysCoherent) {
  FrameCache cache(1);
  cache.insert(5, frame_msg(5, {5}));
  // Inserting a step older than everything cached while full evicts that
  // same step right back out (documented semantics): the newest step must
  // survive and the content index must not leak the transient entry.
  cache.insert(3, frame_msg(3, {3}));
  EXPECT_EQ(cache.occupancy(), 1u);
  EXPECT_TRUE(cache.lookup(3).empty());
  ASSERT_EQ(cache.lookup(5).size(), 1u);
  EXPECT_EQ(cache.content_entries(), 1u);
  EXPECT_EQ(cache.oldest_step(), 5);
  EXPECT_EQ(cache.newest_step(), 5);
  const auto tail = cache.messages_after(INT_MIN);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0]->frame_index, 5);
}

// --------------------------------------------- in-process frame-ref hub ----

TEST(HubRefs, WantsRefsClientGetsAdvertisementsAndFetchesBodies) {
  FrameHub hub;
  auto renderer = hub.connect_renderer();
  hub::ClientOptions options;
  options.id = "edge";
  options.wants_frame_refs = true;
  auto client = hub.connect_client(options);

  NetMessage frame = frame_msg(0, util::Bytes(128, 0x11));
  const auto expect_content = net::content_id_of(frame);
  renderer->send(std::move(frame));

  const auto ref = client->next_for(std::chrono::milliseconds(2000));
  ASSERT_TRUE(ref);
  ASSERT_EQ(ref->type, MsgType::kFrameRef);
  const auto info = net::parse_frame_ref(*ref);
  EXPECT_EQ(info.content, expect_content);
  EXPECT_EQ(info.payload_bytes, 128u);

  // Cache miss on the edge: fetch the body through the client port. It
  // arrives on the same queue, so it can never interleave a frame send.
  client->request_content(info.content);
  const auto data = client->next_for(std::chrono::milliseconds(2000));
  ASSERT_TRUE(data);
  ASSERT_EQ(data->type, MsgType::kFrameData);
  EXPECT_EQ(net::content_id_of(*data), expect_content);
  EXPECT_EQ(data->payload.size(), 128u);

  // Evicted/unknown content counts a fetch miss and sends nothing.
  const auto misses_before = obs::counter("net.relay.fetch_misses").value();
  client->request_content(0x1badc0deULL);
  EXPECT_EQ(client->next_for(std::chrono::milliseconds(100)), nullptr);
  EXPECT_EQ(obs::counter("net.relay.fetch_misses").value(), misses_before + 1);
  hub.shutdown();
}

TEST(HubRefs, ResumeReplaysAdvertisementsNotBodies) {
  FrameHub hub;
  auto renderer = hub.connect_renderer();
  for (int s = 0; s < 4; ++s) renderer->send(frame_msg(s, step_payload(s)));
  for (int i = 0; i < 2000 && hub.steps_relayed() < 4; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(hub.steps_relayed(), 4u);

  hub::ClientOptions options;
  options.id = "late-edge";
  options.wants_frame_refs = true;
  options.replay_cache = true;
  options.replay_after_step = 1;
  auto client = hub.connect_client(options);
  for (int expect = 2; expect < 4; ++expect) {
    const auto msg = client->next_for(std::chrono::milliseconds(2000));
    ASSERT_TRUE(msg) << "resume ref " << expect;
    EXPECT_EQ(msg->type, MsgType::kFrameRef);
    EXPECT_EQ(msg->frame_index, expect);
  }
  hub.shutdown();
}

// ------------------------------------------------------- the relay tree ----

TEST(RelayTree, DeliversEveryFrameBitIdenticalThroughAnEdge) {
  hub::HubTcpServer root;
  EdgeHubConfig cfg;
  cfg.upstream_port = root.port();
  cfg.edge_id = "edge-a";
  EdgeHub edge(cfg);

  constexpr int kSteps = 6;
  hub::HubTcpViewer::Options vo;
  vo.queue_frames = 2 * kSteps;
  hub::HubTcpViewer v1(edge.port(), vo);
  hub::HubTcpViewer v2(edge.port(), vo);

  auto renderer = root.hub().connect_renderer();
  for (int s = 0; s < kSteps; ++s)
    renderer->send(frame_msg(s, step_payload(s)));

  for (auto* v : {&v1, &v2}) {
    for (int s = 0; s < kSteps; ++s) {
      const auto got = v->next();
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->type, MsgType::kFrame);
      EXPECT_EQ(got->frame_index, s);
      EXPECT_EQ(got->payload, step_payload(s));
      v->ack(s);
    }
  }
  const auto stats = edge.stats();
  EXPECT_EQ(stats.refs_seen, static_cast<std::uint64_t>(kSteps));
  EXPECT_EQ(stats.ref_misses, static_cast<std::uint64_t>(kSteps));
  EXPECT_EQ(stats.frames_forwarded, static_cast<std::uint64_t>(kSteps));
  // Viewers hang off the edge; the root serves exactly one display client.
  EXPECT_EQ(root.hub().connected_clients(), 1u);
  edge.shutdown();
  root.shutdown();
}

TEST(RelayTree, IdenticalFramesResolveFromTheEdgeCache) {
  hub::HubTcpServer root;
  EdgeHubConfig cfg;
  cfg.upstream_port = root.port();
  cfg.edge_id = "edge-dedup";
  EdgeHub edge(cfg);

  hub::HubTcpViewer::Options vo;
  vo.queue_frames = 16;
  hub::HubTcpViewer viewer(edge.port(), vo);
  auto renderer = root.hub().connect_renderer();

  constexpr std::size_t kBytes = 32 * 1024;
  const util::Bytes payload(kBytes, 0x5a);

  // Step 0 crosses in full (miss + fetch). Receiving it downstream proves
  // the edge cached it — the cache insert happens before fan-out.
  renderer->send(frame_msg(0, payload));
  auto got = viewer.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->frame_index, 0);

  // Steps 1..5 advertise the same content: refs only, no payload bytes.
  constexpr int kDupes = 5;
  for (int s = 1; s <= kDupes; ++s) renderer->send(frame_msg(s, payload));
  for (int s = 1; s <= kDupes; ++s) {
    got = viewer.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->frame_index, s);
    ASSERT_EQ(got->payload.size(), kBytes);
    EXPECT_EQ(got->payload[0], 0x5a);
  }

  const auto stats = edge.stats();
  EXPECT_EQ(stats.ref_misses, 1u);
  EXPECT_EQ(stats.ref_hits, static_cast<std::uint64_t>(kDupes));
  EXPECT_EQ(stats.fetch_bytes_saved, static_cast<std::uint64_t>(kDupes) * kBytes);
  // Root egress carried one payload plus six small refs — never six bodies.
  EXPECT_LT(stats.upstream_bytes, 2 * kBytes);
  edge.shutdown();
  root.shutdown();
}

TEST(RelayTree, EdgesChainIntoDeeperTrees) {
  hub::HubTcpServer root;
  EdgeHubConfig c1;
  c1.upstream_port = root.port();
  c1.edge_id = "tier1";
  EdgeHub e1(c1);
  EdgeHubConfig c2;
  c2.upstream_port = e1.port();
  c2.edge_id = "tier2";
  c2.tree_depth = 2;
  EdgeHub e2(c2);

  hub::HubTcpViewer viewer(e2.port());
  auto renderer = root.hub().connect_renderer();
  constexpr int kSteps = 4;
  for (int s = 0; s < kSteps; ++s)
    renderer->send(frame_msg(s, step_payload(s)));
  for (int s = 0; s < kSteps; ++s) {
    const auto got = viewer.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->frame_index, s);
    EXPECT_EQ(got->payload, step_payload(s));
    viewer.ack(s);
  }
  // Both tiers spoke the ref protocol; the deep edge fetched through tier 1.
  EXPECT_EQ(e2.stats().refs_seen, static_cast<std::uint64_t>(kSteps));
  e2.shutdown();
  e1.shutdown();
  root.shutdown();
}

TEST(RelayTree, FallsBackToFullFramesAgainstAnOlderRoot) {
  // A v2-only root refuses the edge's v3 hello; the downgrade ladder lands
  // on v2 (losing only the ref capability) and the edge becomes a plain
  // store-and-forward relay — viewers notice nothing.
  HubConfig root_cfg;
  root_cfg.max_protocol_version = 2;
  hub::HubTcpServer root(0, root_cfg);
  EdgeHubConfig cfg;
  cfg.upstream_port = root.port();
  cfg.edge_id = "edge-v2";
  EdgeHub edge(cfg);

  hub::HubTcpViewer viewer(edge.port());
  auto renderer = root.hub().connect_renderer();
  constexpr int kSteps = 3;
  for (int s = 0; s < kSteps; ++s)
    renderer->send(frame_msg(s, step_payload(s)));
  for (int s = 0; s < kSteps; ++s) {
    const auto got = viewer.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->frame_index, s);
    EXPECT_EQ(got->payload, step_payload(s));
  }
  EXPECT_EQ(edge.stats().refs_seen, 0u);  // nothing advertised, all shipped
  edge.shutdown();
  root.shutdown();
}

// ------------------------------------------------------------ seeded chaos --

TEST(RelayChaos, LateJoinerCatchesUpFromEdgeCacheNotTheRoot) {
  // Under seeded latency chaos, a viewer joining after five steps resumes
  // from the edge's own cache: it sees the history bit-intact, and not one
  // extra byte crosses the root-to-edge link.
  const std::uint64_t seed = chaos_seed();
  fault::ScopedFaultPlan scoped(
      fault::FaultPlan::latency_chaos(seed, /*rate=*/0.3, /*max_ms=*/2.0));

  hub::HubTcpServer root;
  EdgeHubConfig cfg;
  cfg.upstream_port = root.port();
  cfg.edge_id = "edge-late";
  cfg.upstream_retry = patient_retry();
  EdgeHub edge(cfg);

  constexpr int kSteps = 5;
  hub::HubTcpViewer::Options vo;
  vo.client_id = "early";
  vo.queue_frames = 2 * kSteps;
  hub::HubTcpViewer early(edge.port(), vo);
  auto renderer = root.hub().connect_renderer();
  for (int s = 0; s < kSteps; ++s)
    renderer->send(frame_msg(s, step_payload(s)));
  for (int s = 0; s < kSteps; ++s) {
    const auto got = early.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->frame_index, s);
    early.ack(s);
  }

  const auto upstream_before = edge.stats().upstream_bytes;
  hub::HubTcpViewer::Options lo;
  lo.client_id = "latecomer";
  lo.last_acked_step = 0;  // displayed step 0 elsewhere; catch up after it
  lo.queue_frames = 2 * kSteps;
  hub::HubTcpViewer late(edge.port(), lo);
  for (int expect = 1; expect < kSteps; ++expect) {
    const auto got = late.next();
    ASSERT_TRUE(got.has_value()) << "catch-up step " << expect;
    EXPECT_EQ(got->frame_index, expect);
    EXPECT_EQ(got->payload, step_payload(expect));
  }
  // The whole catch-up was served edge-locally.
  EXPECT_EQ(edge.stats().upstream_bytes, upstream_before);
  early.close();
  late.close();
  edge.shutdown();
  root.shutdown();
}

TEST(RelayChaos, EdgeDeathAndRestartResumesViewersExactlyOnce) {
  // The acceptance scenario: an edge dies mid-stream and restarts on the
  // same port with the same identity. The viewer behind it reconnects and
  // must see every step exactly once, in order — no duplicates (the edge
  // re-injects history it recovers from the root) and no skips (the edge's
  // upstream ack floor trails its viewers' acks).
  const std::uint64_t seed = chaos_seed();
  fault::ScopedFaultPlan scoped(
      fault::FaultPlan::latency_chaos(seed, /*rate=*/0.2, /*max_ms=*/1.0));

  hub::HubTcpServer root;
  EdgeHubConfig cfg;
  cfg.upstream_port = root.port();
  cfg.edge_id = "edge-phoenix";
  cfg.upstream_retry = patient_retry();
  auto edge = std::make_unique<EdgeHub>(cfg);
  const int edge_port = edge->port();
  cfg.listen_port = edge_port;  // the restarted edge rebinds the same port

  constexpr int kSteps = 12;
  hub::HubTcpViewer::Options vo;
  vo.client_id = "follower";
  vo.auto_reconnect = true;
  vo.retry = patient_retry();
  vo.queue_frames = 2 * kSteps;
  hub::HubTcpViewer viewer(edge_port, vo);

  auto renderer = root.hub().connect_renderer();
  std::atomic<bool> feeder_stop{false};
  std::thread feeder([&] {
    for (int s = 0; s < kSteps && !feeder_stop.load(); ++s) {
      renderer->send(frame_msg(s, step_payload(s)));
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  std::vector<int> sequence;
  bool killed = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (sequence.size() < static_cast<std::size_t>(kSteps) &&
         std::chrono::steady_clock::now() < deadline) {
    const auto got = viewer.next();
    ASSERT_TRUE(got.has_value()) << "stream ended before every step arrived";
    if (got->type != MsgType::kFrame) continue;
    ASSERT_EQ(got->payload, step_payload(got->frame_index));
    sequence.push_back(got->frame_index);
    viewer.ack(got->frame_index);
    if (!killed && got->frame_index >= 3) {
      // Kill the edge mid-stream and restart it: same port, same identity.
      // The root resumes the reclaimed edge_id from its last acked step.
      edge->shutdown();
      edge.reset();
      edge = std::make_unique<EdgeHub>(cfg);
      ASSERT_EQ(edge->port(), edge_port);
      killed = true;
    }
  }
  feeder_stop.store(true);
  feeder.join();

  ASSERT_TRUE(killed);
  ASSERT_EQ(sequence.size(), static_cast<std::size_t>(kSteps));
  for (int s = 0; s < kSteps; ++s)
    EXPECT_EQ(sequence[static_cast<std::size_t>(s)], s)
        << "steps duplicated or skipped across the edge restart";
  viewer.close();
  edge->shutdown();
  root.shutdown();
}

TEST(RelayChaos, UpstreamPartitionRecoversThroughBackoffReconnect) {
  // Every connection dies after a byte budget — the upstream link included
  // — so the run can only complete through the edge's retry/backoff
  // reconnects and resume-as-refs replays. The viewer still collects every
  // step bit-intact.
  const std::uint64_t seed = chaos_seed();
  fault::FaultPlan plan;
  plan.seed = seed;
  // Low enough that the upstream link (handshake + 10 refs + 10 bodies,
  // ~1.6 KB) is guaranteed to die at least once per incarnation.
  plan.drop_after_bytes(1000);
  fault::ScopedFaultPlan scoped(plan);

  hub::HubTcpServer root;
  EdgeHubConfig cfg;
  cfg.upstream_port = root.port();
  cfg.edge_id = "edge-partition";
  cfg.upstream_retry = patient_retry();
  EdgeHub edge(cfg);

  constexpr int kSteps = 10;
  hub::HubTcpViewer::Options vo;
  vo.client_id = "survivor";
  vo.auto_reconnect = true;
  vo.retry = patient_retry();
  vo.queue_frames = 2 * kSteps;
  hub::HubTcpViewer viewer(edge.port(), vo);

  auto renderer = root.hub().connect_renderer();
  for (int s = 0; s < kSteps; ++s)
    renderer->send(frame_msg(s, step_payload(s)));

  std::set<int> seen;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (seen.size() < static_cast<std::size_t>(kSteps) &&
         std::chrono::steady_clock::now() < deadline) {
    const auto got = viewer.next();
    ASSERT_TRUE(got.has_value()) << "stream ended before every step arrived";
    if (got->type != MsgType::kFrame) continue;
    ASSERT_EQ(got->payload, step_payload(got->frame_index));
    seen.insert(got->frame_index);
    viewer.ack(got->frame_index);
  }
  for (int s = 0; s < kSteps; ++s)
    EXPECT_TRUE(seen.count(s)) << "step " << s << " never displayed";
  EXPECT_GT(edge.stats().upstream_reconnects, 0u);
  viewer.close();
  edge.shutdown();
  root.shutdown();
}

}  // namespace
}  // namespace tvviz
