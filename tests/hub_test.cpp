// Tests for the multi-client session hub: the reference-counted frame
// cache, fan-out with per-client backpressure, liveness/reaping,
// reconnect-with-resume, the versioned hello handshake, and the hub served
// over real TCP sockets.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "core/session.hpp"
#include "fault/fault.hpp"
#include "field/generators.hpp"
#include "hub/frame_cache.hpp"
#include "hub/hub.hpp"
#include "hub/tcp_hub.hpp"
#include "net/protocol.hpp"
#include "obs/counters.hpp"
#include "render/image.hpp"

namespace tvviz {
namespace {

using hub::ClientOptions;
using hub::FrameCache;
using hub::FrameHub;
using hub::HubConfig;
using net::MsgType;
using net::NetMessage;

NetMessage frame_msg(int step, std::initializer_list<std::uint8_t> payload) {
  NetMessage msg;
  msg.type = MsgType::kFrame;
  msg.frame_index = step;
  msg.codec = "raw";
  msg.payload = payload;
  return msg;
}

NetMessage shutdown_msg() {
  NetMessage msg;
  msg.type = MsgType::kShutdown;
  return msg;
}

NetMessage sub_msg(int step, int piece, int piece_count) {
  NetMessage msg;
  msg.type = MsgType::kSubImage;
  msg.frame_index = step;
  msg.piece = piece;
  msg.piece_count = piece_count;
  msg.codec = "raw";
  msg.payload = {static_cast<std::uint8_t>(step)};
  return msg;
}

// ---------------------------------------------------------- FrameCache ----

TEST(FrameCache, EvictsByStepAge) {
  FrameCache cache(3);
  for (int s = 0; s < 5; ++s) cache.insert(s, frame_msg(s, {1}));
  EXPECT_EQ(cache.occupancy(), 3u);
  EXPECT_EQ(cache.oldest_step(), 2);
  EXPECT_EQ(cache.newest_step(), 4);
  EXPECT_TRUE(cache.lookup(0).empty());   // evicted
  EXPECT_EQ(cache.lookup(4).size(), 1u);  // cached
}

TEST(FrameCache, SharedBuffersSurviveEviction) {
  FrameCache cache(1);
  const auto kept = cache.insert(0, frame_msg(0, {42}));
  cache.insert(1, frame_msg(1, {43}));  // evicts step 0
  EXPECT_TRUE(cache.lookup(0).empty());
  EXPECT_EQ(kept.frame->payload[0], 42);  // a queue's reference keeps it alive
}

TEST(FrameCache, MessagesAfterReturnsStepOrderedTail) {
  FrameCache cache(8);
  for (int s = 0; s < 6; ++s) {
    cache.insert(s, frame_msg(s, {static_cast<std::uint8_t>(s)}));
    cache.insert(s, frame_msg(s, {static_cast<std::uint8_t>(s + 100)}));
  }
  const auto tail = cache.messages_after(3);
  ASSERT_EQ(tail.size(), 4u);  // steps 4 and 5, two messages each
  EXPECT_EQ(tail[0]->frame_index, 4);
  EXPECT_EQ(tail[1]->frame_index, 4);
  EXPECT_EQ(tail[3]->frame_index, 5);
  EXPECT_TRUE(cache.messages_after(5).empty());
}

TEST(FrameCache, AccumulatesBytes) {
  FrameCache cache(2);
  cache.insert(0, frame_msg(0, {1, 2, 3}));
  const auto b1 = cache.bytes();
  EXPECT_GT(b1, 0u);
  cache.insert(1, frame_msg(1, {1, 2, 3}));
  cache.insert(2, frame_msg(2, {1, 2, 3}));  // evicts step 0
  EXPECT_EQ(cache.bytes(), 2 * b1);
}

// ------------------------------------------------------------ handshake ----

TEST(Hello, CapabilityRoundTrip) {
  net::HelloInfo info;
  info.role = "display";
  info.client_id = "viewer-7";
  info.last_acked_step = 41;
  info.queue_frames = 12;
  info.wants_heartbeat = true;
  const auto out = net::parse_hello(net::make_hello(info));
  EXPECT_EQ(out.version, net::kProtocolVersion);
  EXPECT_EQ(out.role, "display");
  EXPECT_EQ(out.client_id, "viewer-7");
  EXPECT_EQ(out.last_acked_step, 41);
  EXPECT_EQ(out.queue_frames, 12u);
  EXPECT_TRUE(out.wants_heartbeat);
}

TEST(Hello, LegacyEmptyPayloadParsesAsVersionOne) {
  // v1 endpoints say hello with the role in the codec field and no
  // capability payload; they must keep working against v2 servers.
  NetMessage msg;
  msg.type = MsgType::kHello;
  msg.codec = "renderer";
  const auto info = net::parse_hello(msg);
  EXPECT_EQ(info.version, 1u);
  EXPECT_EQ(info.role, "renderer");
  EXPECT_TRUE(info.client_id.empty());
  EXPECT_EQ(info.last_acked_step, -1);
}

TEST(Hello, TruncatedCapabilityPayloadThrows) {
  net::HelloInfo info;
  info.role = "display";
  auto msg = net::make_hello(info);
  msg.payload = msg.payload.view(0, 2);  // cuts into the version field
  EXPECT_THROW(net::parse_hello(msg), std::runtime_error);
}

TEST(Hello, ErrorFrameRoundTrip) {
  const auto err = net::make_error("that was rude");
  EXPECT_EQ(err.type, MsgType::kError);
  EXPECT_EQ(net::error_text(err), "that was rude");
}

// ------------------------------------------------------------- fan-out ----

TEST(Hub, FanOutToEightClientsBitIdentical) {
  HubConfig cfg;
  cfg.client_queue_frames = 64;  // roomy: this test is about fidelity
  FrameHub hub(cfg);
  auto renderer = hub.connect_renderer();
  std::vector<std::shared_ptr<FrameHub::ClientPort>> clients;
  for (int k = 0; k < 8; ++k) clients.push_back(hub.connect_client());
  EXPECT_EQ(hub.connected_clients(), 8u);

  const int kSteps = 16;
  std::vector<std::thread> threads;
  std::vector<int> received(8, 0);
  std::atomic<bool> mismatch{false};
  for (int k = 0; k < 8; ++k) {
    threads.emplace_back([&, k] {
      while (auto msg = clients[static_cast<std::size_t>(k)]->next()) {
        if (msg->type == MsgType::kShutdown) break;
        const auto expect = static_cast<std::uint8_t>(msg->frame_index * 3);
        if (msg->payload.size() != 5 || msg->payload[0] != expect)
          mismatch.store(true);
        ++received[static_cast<std::size_t>(k)];
      }
    });
  }
  for (int s = 0; s < kSteps; ++s) {
    NetMessage msg = frame_msg(s, {});
    msg.payload = util::Bytes(5, static_cast<std::uint8_t>(s * 3));
    renderer->send(std::move(msg));
  }
  renderer->send(shutdown_msg());
  for (auto& t : threads) t.join();
  hub.shutdown();

  // Plenty of queue for 8 fast consumers: nobody should have dropped.
  for (int k = 0; k < 8; ++k) EXPECT_EQ(received[k], kSteps) << "client " << k;
  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ(hub.steps_relayed(), static_cast<std::uint64_t>(kSteps));
}

TEST(Hub, FanOutSharesOnePayloadBufferAcrossClients) {
  HubConfig cfg;
  cfg.client_queue_frames = 64;
  FrameHub hub(cfg);
  auto renderer = hub.connect_renderer();
  std::vector<std::shared_ptr<FrameHub::ClientPort>> clients;
  for (int k = 0; k < 8; ++k) clients.push_back(hub.connect_client());

  NetMessage msg = frame_msg(0, {});
  msg.payload = util::Bytes(64 * 1024, 0xab);
  const util::SharedBytes alias = msg.payload;  // refcount bump, no copy

  auto& copies = obs::counter("util.shared_bytes.copy_bytes");
  const auto before = copies.value();
  renderer->send(std::move(msg));
  renderer->send(shutdown_msg());

  for (int k = 0; k < 8; ++k) {
    int frames = 0;
    while (auto got = clients[static_cast<std::size_t>(k)]->next()) {
      if (got->type == MsgType::kShutdown) break;
      // Every client sees the renderer's own buffer, not a duplicate.
      EXPECT_TRUE(got->payload.shares_storage_with(alias)) << "client " << k;
      ++frames;
    }
    EXPECT_EQ(frames, 1) << "client " << k;
  }
  hub.shutdown();
  EXPECT_EQ(copies.value(), before);
}

TEST(Hub, SlowClientDropsWithoutStallingFastClient) {
  HubConfig cfg;
  cfg.client_queue_frames = 4;
  FrameHub hub(cfg);
  auto renderer = hub.connect_renderer();

  ClientOptions slow_opts;
  slow_opts.id = "slow";
  // Every delivery to the slow client costs ~20 ms against a ~1 ms frame
  // period: its bounded queue must overflow and drop whole steps.
  slow_opts.link = net::LinkModel{"crawl", 0.020, 1e12};
  slow_opts.link_time_scale = 1.0;
  auto slow = hub.connect_client(slow_opts);
  ClientOptions fast_opts;
  fast_opts.id = "fast";
  // Roomy bound: this client must keep every frame even when the test
  // machine deschedules its consumer thread for a few milliseconds.
  fast_opts.queue_frames = 64;
  auto fast = hub.connect_client(fast_opts);

  const int kSteps = 40;
  std::atomic<int> fast_seen{0};
  std::atomic<int> slow_seen{0};
  std::thread fast_thread([&] {
    while (auto msg = fast->next()) {
      if (msg->type == MsgType::kShutdown) break;
      fast_seen.fetch_add(1);
    }
  });
  std::thread slow_thread([&] {
    while (auto msg = slow->next()) {
      if (msg->type == MsgType::kShutdown) break;
      slow_seen.fetch_add(1);
    }
  });
  for (int s = 0; s < kSteps; ++s) {
    renderer->send(frame_msg(s, {9}));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  renderer->send(shutdown_msg());
  fast_thread.join();
  slow_thread.join();
  hub.shutdown();

  // The fast client saw everything; the slow one lost steps, and the loss
  // is visible in its counters — nobody blocked the relay.
  EXPECT_EQ(fast_seen.load(), kSteps);
  EXPECT_EQ(hub.stats_for("fast").steps_skipped, 0u);
  EXPECT_LT(slow_seen.load(), kSteps);
  EXPECT_GT(hub.stats_for("slow").steps_skipped, 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(slow_seen.load()) +
                hub.stats_for("slow").steps_skipped,
            static_cast<std::uint64_t>(kSteps));
}

TEST(Hub, OversizedSubImageStepNeverDeliversPartialFrame) {
  // Regression: when a step's piece count exceeded the client's queue
  // bound, making room for a late piece evicted the step's own earlier
  // pieces and then enqueued the newcomer — the client received a partial
  // frame that could never reassemble. The whole step must drop instead.
  HubConfig cfg;
  cfg.client_queue_frames = 2;
  FrameHub hub(cfg);
  auto renderer = hub.connect_renderer();
  auto client = hub.connect_client(ClientOptions{.id = "narrow"});
  // The client is not consuming: 4 pieces of step 0 cannot fit 2 slots.
  for (int p = 0; p < 4; ++p) renderer->send(sub_msg(0, p, 4));
  // Step 1's 2 pieces fit exactly and must arrive complete.
  for (int p = 0; p < 2; ++p) renderer->send(sub_msg(1, p, 2));
  hub.shutdown();

  std::map<int, int> pieces_seen;
  while (auto msg = client->next()) {
    if (msg->type == MsgType::kSubImage) ++pieces_seen[msg->frame_index];
  }
  EXPECT_EQ(pieces_seen.count(0), 0u);  // whole step dropped, no orphans
  ASSERT_EQ(pieces_seen.count(1), 1u);
  EXPECT_EQ(pieces_seen[1], 2);
  EXPECT_EQ(hub.stats_for("narrow").steps_skipped, 1u);
}

TEST(Hub, ShutdownFlushesQueuedFrames) {
  // Same flush guarantee as the daemon: frames accepted before shutdown()
  // must land in the client queues and stay drainable.
  FrameHub hub;
  auto renderer = hub.connect_renderer();
  auto client = hub.connect_client();
  for (int s = 0; s < 5; ++s) renderer->send(frame_msg(s, {1}));
  hub.shutdown();
  int seen = 0;
  while (auto msg = client->next()) ++seen;
  EXPECT_EQ(seen, 5);
}

TEST(Hub, ControlEventsReachEveryRenderer) {
  FrameHub hub;
  auto r1 = hub.connect_renderer();
  auto r2 = hub.connect_renderer();
  auto client = hub.connect_client();
  net::ControlEvent e;
  e.kind = net::ControlKind::kSetCodec;
  e.name = "jpeg";
  client->send_control(e);
  const auto wait_for = [](FrameHub::RendererPort& port) {
    for (int i = 0; i < 500; ++i) {
      if (auto ev = port.poll_control()) return ev;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return std::optional<net::ControlEvent>{};
  };
  const auto e1 = wait_for(*r1);
  const auto e2 = wait_for(*r2);
  ASSERT_TRUE(e1 && e2);
  EXPECT_EQ(e1->name, "jpeg");
  EXPECT_EQ(e2->name, "jpeg");
}

TEST(Hub, RejectsClientsBeyondCapacity) {
  HubConfig cfg;
  cfg.max_clients = 2;
  FrameHub hub(cfg);
  auto a = hub.connect_client();
  auto b = hub.connect_client();
  EXPECT_THROW(hub.connect_client(), std::runtime_error);
  hub.disconnect_client(*a);
  EXPECT_NO_THROW(hub.connect_client());
}

// --------------------------------------------------- reconnect / resume ----

TEST(Hub, ReconnectResumesFromLastAckedStep) {
  FrameHub hub;
  auto renderer = hub.connect_renderer();
  auto first = hub.connect_client(ClientOptions{.id = "viewer"});
  for (int s = 0; s < 6; ++s) renderer->send(frame_msg(s, {7}));
  // Wait until all six steps crossed the relay (and thus the cache), so
  // the disconnect below happens with the full history replayable.
  for (int i = 0; i < 2000 && hub.steps_relayed() < 6; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(hub.steps_relayed(), 6u);

  // Consume and ack the first three steps, then vanish.
  for (int s = 0; s < 3; ++s) {
    auto msg = first->next();
    ASSERT_TRUE(msg);
    first->ack(msg->frame_index);
  }
  hub.disconnect_client(*first);

  // Same identity returns: steps 3..5 are replayed from the cache.
  auto back = hub.connect_client(ClientOptions{.id = "viewer"});
  std::vector<int> resumed;
  for (int i = 0; i < 3; ++i) {
    auto msg = back->next_for(std::chrono::milliseconds(500));
    ASSERT_TRUE(msg) << "resume message " << i;
    resumed.push_back(msg->frame_index);
  }
  EXPECT_EQ(resumed, (std::vector<int>{3, 4, 5}));
  EXPECT_EQ(hub.stats_for("viewer").messages_resumed, 3u);

  // And the live stream continues on top of the replay.
  renderer->send(frame_msg(6, {7}));
  auto live = back->next_for(std::chrono::milliseconds(500));
  ASSERT_TRUE(live);
  EXPECT_EQ(live->frame_index, 6);
  hub.shutdown();
}

TEST(Hub, ResumeAllowanceRestoresConfiguredBound) {
  // Regression: the connect-time replay used to raise the client's queue
  // capacity permanently (history size + bound), so a reconnected client
  // kept an inflated backpressure window forever. The allowance must drain
  // with the history and give the configured bound back.
  HubConfig cfg;
  cfg.client_queue_frames = 4;
  cfg.cache_steps = 64;
  FrameHub hub(cfg);
  auto renderer = hub.connect_renderer();
  for (int s = 0; s < 12; ++s) renderer->send(frame_msg(s, {1}));
  for (int i = 0; i < 2000 && hub.steps_relayed() < 12; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(hub.steps_relayed(), 12u);

  ClientOptions opts;
  opts.id = "returner";
  opts.replay_cache = true;
  auto client = hub.connect_client(opts);
  // The replay itself may exceed the bound — that is the point of resume.
  EXPECT_EQ(client->buffered(), 12u);
  for (int i = 0; i < 12; ++i)
    ASSERT_TRUE(client->next_for(std::chrono::milliseconds(500))) << i;

  // History consumed: the live stream is bounded at the configured 4 again.
  for (int s = 12; s < 32; ++s) renderer->send(frame_msg(s, {1}));
  for (int i = 0; i < 2000 && hub.steps_relayed() < 32; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(hub.steps_relayed(), 32u);
  EXPECT_LE(client->buffered(), 4u);
  EXPECT_GT(hub.stats_for("returner").steps_skipped, 0u);
  hub.shutdown();
}

TEST(Hub, ReconnectDuringLiveStreamNeverDuplicatesSteps) {
  // Regression: the relay inserted a frame into the cache before taking the
  // fan-out snapshot; a reconnect landing between the two both replayed
  // that frame from the cache and received it live. With every message
  // acked, the step sequence a client identity observes across takeovers
  // must be strictly increasing.
  HubConfig cfg;
  cfg.client_queue_frames = 256;
  cfg.cache_steps = 512;
  FrameHub hub(cfg);
  auto renderer = hub.connect_renderer();
  std::atomic<bool> done{false};
  std::thread feeder([&] {
    for (int s = 0; s < 300 && !done.load(); ++s) {
      renderer->send(frame_msg(s, {1}));
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    done.store(true);
  });

  bool duplicate = false;
  int last_seen = -1;
  auto port = hub.connect_client(ClientOptions{.id = "roamer"});
  for (int round = 0; round < 50 && !done.load(); ++round) {
    for (int i = 0; i < 3; ++i) {
      auto msg = port->next_for(std::chrono::milliseconds(100));
      if (!msg || msg->type != MsgType::kFrame) continue;
      if (msg->frame_index <= last_seen) duplicate = true;
      last_seen = msg->frame_index;
      port->ack(msg->frame_index);
    }
    port = hub.connect_client(ClientOptions{.id = "roamer"});  // takeover
  }
  done.store(true);
  feeder.join();
  hub.shutdown();
  EXPECT_FALSE(duplicate);
}

TEST(Hub, ReconnectTakesOverALiveStalePort) {
  // A client whose old connection is still half-open reconnects: the hub
  // must close the stale port (takeover) rather than double-deliver.
  FrameHub hub;
  auto renderer = hub.connect_renderer();
  auto stale = hub.connect_client(ClientOptions{.id = "v"});
  auto fresh = hub.connect_client(ClientOptions{.id = "v"});
  EXPECT_EQ(hub.connected_clients(), 1u);
  renderer->send(frame_msg(0, {1}));
  auto got = fresh->next_for(std::chrono::milliseconds(500));
  ASSERT_TRUE(got);
  EXPECT_EQ(got->frame_index, 0);
  // The stale port is closed and drained.
  EXPECT_EQ(stale->next_for(std::chrono::milliseconds(50)), nullptr);
  EXPECT_TRUE(stale->closed());
  hub.shutdown();
}

// ------------------------------------------------------------- liveness ----

TEST(Hub, HeartbeatTimeoutReapsDeadClients) {
  HubConfig cfg;
  cfg.heartbeat_timeout_s = 0.05;
  FrameHub hub(cfg);
  auto renderer = hub.connect_renderer();
  auto dead = hub.connect_client(ClientOptions{.id = "dead"});
  auto alive = hub.connect_client(ClientOptions{.id = "alive"});

  // "alive" beats; "dead" goes silent. The reaper needs relay activity or
  // ticks, both of which the pop_for tick provides.
  for (int i = 0; i < 10; ++i) {
    alive->heartbeat();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    if (hub.clients_reaped() > 0) break;
  }
  EXPECT_EQ(hub.clients_reaped(), 1u);
  EXPECT_TRUE(dead->closed());
  EXPECT_FALSE(alive->closed());
  EXPECT_EQ(hub.connected_clients(), 1u);

  // A reaped client can come back (reconnect path).
  auto back = hub.connect_client(ClientOptions{.id = "dead"});
  EXPECT_FALSE(back->closed());
  hub.shutdown();
}

// Regression: ClientState::connected used to be a plain bool written by the
// reaper under only the per-client mutex while connect/stats/relay read it
// under only clients_mutex_ — a cross-mutex data race (TSan-visible under
// tools/verify_tsan.sh). It is atomic now; this test drives the reaper
// against concurrent stats polling so the race would fire if reintroduced.
TEST(Hub, ReapRacesWithStatsPolling) {
  HubConfig cfg;
  cfg.heartbeat_timeout_s = 0.02;
  FrameHub hub(cfg);
  auto renderer = hub.connect_renderer();

  std::atomic<bool> polling{true};
  std::thread poller([&] {
    while (polling.load()) {
      (void)hub.connected_clients();
      for (const auto& s : hub.client_stats()) (void)s.connected;
    }
  });
  // Churn: clients connect, go silent, get reaped — every reap is a
  // connected-flag write concurrent with the poller's reads.
  for (int round = 0; round < 5; ++round) {
    auto a = hub.connect_client(ClientOptions{.id = "churn-a"});
    auto b = hub.connect_client(ClientOptions{.id = "churn-b"});
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (hub.clients_reaped() < static_cast<std::uint64_t>(2 * (round + 1)) &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  polling.store(false);
  poller.join();
  EXPECT_GE(hub.clients_reaped(), 10u);
  hub.shutdown();
}

// ------------------------------------------------------------- over TCP ----

TEST(HubTcp, HandshakeAssignsAndEchoesIdentity) {
  hub::HubTcpServer server;
  hub::HubTcpViewer::Options named;
  named.client_id = "alice";
  hub::HubTcpViewer alice(server.port(), named);
  EXPECT_EQ(alice.assigned_id(), "alice");
  hub::HubTcpViewer anon(server.port());
  EXPECT_FALSE(anon.assigned_id().empty());
  server.shutdown();
}

TEST(HubTcp, RefusesFutureProtocolVersion) {
  hub::HubTcpServer server;
  auto conn = net::TcpConnection::connect_local(server.port());
  net::HelloInfo info;
  info.version = 9;
  info.role = "display";
  conn->send_message(net::make_hello(info));
  const auto reply = conn->recv_message();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, MsgType::kError);
  EXPECT_NE(net::error_text(*reply).find("unsupported protocol version 9"),
            std::string::npos);
  server.shutdown();
}

TEST(HubTcp, MalformedRendererStreamDoesNotKillServer) {
  // Regression: serve_renderer's read loop had no try/catch, so malformed
  // wire data *after* a valid handshake threw out of the worker thread and
  // std::terminate'd the whole hub. It must count as a disconnect.
  hub::HubTcpServer server;
  {
    auto bad = net::TcpConnection::connect_local(server.port());
    net::HelloInfo hello;
    hello.role = "renderer";
    bad->send_message(net::make_hello(hello));
    // A well-framed body whose type byte is not a MsgType.
    auto body = net::serialize_message(frame_msg(0, {1, 2, 3}));
    body[0] = 0xEE;
    const auto len = static_cast<std::uint32_t>(body.size());
    const std::uint8_t header[4] = {
        static_cast<std::uint8_t>(len & 0xFF),
        static_cast<std::uint8_t>((len >> 8) & 0xFF),
        static_cast<std::uint8_t>((len >> 16) & 0xFF),
        static_cast<std::uint8_t>((len >> 24) & 0xFF)};
    ::send(bad->fd(), header, 4, MSG_NOSIGNAL);
    ::send(bad->fd(), body.data(), body.size(), MSG_NOSIGNAL);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // The hub survived: a fresh viewer and a healthy renderer still work.
  hub::HubTcpViewer viewer(server.port());
  net::TcpRendererLink renderer(server.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  renderer.send(frame_msg(7, {9}));
  const auto got = viewer.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->frame_index, 7);
  server.shutdown();
}

TEST(HubTcp, FansOutOverSocketsBitIdentical) {
  hub::HubTcpServer server;
  constexpr int kClients = 4;
  constexpr int kSteps = 6;
  std::vector<std::unique_ptr<hub::HubTcpViewer>> viewers;
  for (int k = 0; k < kClients; ++k)
    viewers.push_back(std::make_unique<hub::HubTcpViewer>(server.port()));

  net::TcpRendererLink renderer(server.port());  // legacy v1 hello
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  for (int s = 0; s < kSteps; ++s) {
    NetMessage msg = frame_msg(s, {});
    msg.payload = util::Bytes(64, static_cast<std::uint8_t>(s + 1));
    renderer.send(msg);
  }
  for (auto& v : viewers) {
    for (int s = 0; s < kSteps; ++s) {
      const auto got = v->next();
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->frame_index, s);
      EXPECT_EQ(got->payload,
                util::Bytes(64, static_cast<std::uint8_t>(s + 1)));
      v->ack(s);
    }
  }
  server.shutdown();
}

TEST(HubTcp, ReconnectOverSocketsResumes) {
  hub::HubTcpServer server;
  net::TcpRendererLink renderer(server.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  int last_acked = -1;
  {
    hub::HubTcpViewer::Options o;
    o.client_id = "roamer";
    hub::HubTcpViewer viewer(server.port(), o);
    for (int s = 0; s < 5; ++s) renderer.send(frame_msg(s, {5}));
    for (int s = 0; s < 2; ++s) {
      const auto got = viewer.next();
      ASSERT_TRUE(got.has_value());
      viewer.ack(got->frame_index);
      last_acked = got->frame_index;
    }
    // Give the ack a moment to cross the socket before vanishing.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    viewer.close();
  }

  hub::HubTcpViewer::Options o;
  o.client_id = "roamer";
  o.last_acked_step = last_acked;
  hub::HubTcpViewer viewer(server.port(), o);
  std::vector<int> resumed;
  for (int i = 0; i < 3; ++i) {
    const auto got = viewer.next();
    ASSERT_TRUE(got.has_value()) << "resume message " << i;
    resumed.push_back(got->frame_index);
  }
  EXPECT_EQ(resumed, (std::vector<int>{2, 3, 4}));
  server.shutdown();
}

TEST(HubTcp, ReconnectDowngradesWhenServerSpeaksOlderProtocol) {
  // The hub restarts on the same port speaking only protocol v1 (an older
  // deployment rolled back underneath a live viewer). The auto-reconnect
  // viewer's v2 capability hello is refused with "unsupported protocol
  // version"; it must renegotiate with the legacy v1 hello and keep
  // receiving frames — as a fresh identity, since v1 carries no resume
  // point.
  static obs::Counter& downgrades = obs::counter("net.retry.downgrades");
  const auto downgrades_before = downgrades.value();

  hub::HubTcpViewer::Options o;
  o.client_id = "timelord";
  o.auto_reconnect = true;
  o.retry.max_attempts = 8;
  o.retry.base_delay_ms = 5.0;
  o.retry.max_delay_ms = 100.0;
  int port = 0;
  std::unique_ptr<hub::HubTcpViewer> viewer;
  {
    hub::HubTcpServer modern;
    port = modern.port();
    viewer = std::make_unique<hub::HubTcpViewer>(port, o);
    EXPECT_EQ(viewer->assigned_id(), "timelord");
    EXPECT_FALSE(viewer->downgraded());
    modern.shutdown();
  }

  hub::HubConfig cfg;
  cfg.max_protocol_version = 1;
  hub::HubTcpServer legacy(port, cfg);
  std::atomic<bool> stop{false};
  std::thread pump([&] {
    auto renderer = legacy.hub().connect_renderer();
    int s = 0;
    while (!stop.load()) {
      renderer->send(frame_msg(s++, {42}));
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  const auto got = viewer->next();  // EOF -> reconnect -> refused -> v1
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, util::Bytes{42});
  EXPECT_TRUE(viewer->downgraded());
  EXPECT_GE(downgrades.value(), downgrades_before + 1);

  stop.store(true);
  pump.join();
  viewer->close();
  legacy.shutdown();
}

TEST(HubTcp, CloseUnblocksASenderStalledOnAFullSocket) {
  // Regression: close() used to take send_mutex_ before shutting the socket
  // down. A sender blocked inside send_message() on a full socket buffer
  // (the default policy has no io_timeout) holds that lock until the very
  // shutdown() close() was waiting to issue — a deadlock, with the stalled
  // hub unreachable forever. close() must shut the socket down without the
  // send lock. On regression this test hangs (ctest timeout).
  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr),
            0);
  socklen_t alen = sizeof addr;
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          &alen),
            0);
  const int port = ntohs(addr.sin_port);
  ASSERT_EQ(::listen(listen_fd, 1), 0);

  // A hub that completes the handshake and then goes silent: it never reads
  // again, so the viewer's sends pile up until the socket buffers are full.
  std::atomic<bool> release{false};
  std::thread server([&] {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return;
    net::TcpConnection conn(fd);
    try {
      (void)conn.recv_message();  // the viewer's hello
      NetMessage ok;
      ok.type = MsgType::kHelloAck;
      ok.codec = "wedged";
      conn.send_message(ok);
    } catch (const std::exception&) {
    }
    while (!release.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });

  hub::HubTcpViewer viewer(port);
  std::atomic<bool> sender_done{false};
  std::thread sender([&] {
    net::ControlEvent big;
    big.name = std::string(1 << 16, 'x');
    try {
      // Far more than any auto-tuned socket buffering: the loop wedges
      // inside send_message() long before it completes.
      for (int i = 0; i < 4096; ++i) viewer.send_control(big);
    } catch (const std::exception&) {
      // close() shut the socket down under the sender: expected.
    }
    sender_done.store(true);
  });
  // Let the sender actually wedge into the full buffer before closing.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_FALSE(sender_done.load()) << "sender never blocked; test is vacuous";
  viewer.close();  // must not deadlock against the blocked sender
  sender.join();
  EXPECT_TRUE(sender_done.load());
  release.store(true);
  server.join();
  ::close(listen_fd);
}

// ------------------------------------------------ accept-path regressions --

/// Spin until `done` or the deadline; returns whether `done` held.
template <typename Pred>
bool eventually(Pred done, double timeout_s = 10.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (!done()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

constexpr hub::HubConfig::TcpTransport kBothTransports[] = {
    hub::HubConfig::TcpTransport::kEpoll,
    hub::HubConfig::TcpTransport::kThreadPerConnection};

TEST(HubTcp, SilentClientDoesNotBlockHandshake) {
  // Regression: the accept path used to read the hello synchronously, so a
  // client that connected and then said nothing wedged every later connect
  // behind it. The handshake now happens off the accept path on both
  // transports; a silent peer costs a session slot, never the listener.
  for (const auto transport : kBothTransports) {
    HubConfig cfg;
    cfg.tcp_transport = transport;
    hub::HubTcpServer server(0, cfg);
    auto silent = net::TcpConnection::connect_local(server.port());
    const auto start = std::chrono::steady_clock::now();
    hub::HubTcpViewer viewer(server.port());
    const std::chrono::duration<double> took =
        std::chrono::steady_clock::now() - start;
    EXPECT_LT(took.count(), 5.0);
    EXPECT_FALSE(viewer.assigned_id().empty());
    server.shutdown();
  }
}

TEST(HubTcp, ListenerSurvivesFdExhaustion) {
  // Regression: any accept() failure used to kill the accept loop for good,
  // so the first EMFILE burst permanently deafened the hub. Exhaustion must
  // count (net.hub.accept_errors), back off, and recover once descriptors
  // free up — only a closed listener stops the loop.
  hub::HubTcpServer server;
  const auto errors_before = obs::counter("net.hub.accept_errors").value();

  // Reserve the client's descriptor first, then hoard every remaining slot
  // so the server's accept() has nothing left to allocate.
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  std::vector<int> hoard;
  for (;;) {
    const int fd = ::dup(probe);
    if (fd < 0) break;
    hoard.push_back(fd);
  }
  ASSERT_FALSE(hoard.empty());

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
  // The kernel completes the TCP handshake in the listen backlog; the
  // server-side accept() of it fails with EMFILE until the hoard is freed.
  ASSERT_EQ(::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0);
  const bool counted = eventually([&] {
    return obs::counter("net.hub.accept_errors").value() > errors_before;
  });
  for (const int fd : hoard) ::close(fd);
  ASSERT_TRUE(counted) << "accept never reported the exhaustion";

  // The backed-off listener must pick the queued connection up and complete
  // a normal v2 handshake on it.
  net::TcpConnection conn(probe);
  conn.set_io_timeout_ms(10000.0);
  net::HelloInfo hello;
  hello.role = "display";
  hello.client_id = "survivor";
  conn.send_message(net::make_hello(hello));
  const auto ack = conn.recv_message();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->type, MsgType::kHelloAck);
  server.shutdown();
}

TEST(HubTcp, ConnectionChurnKeepsStateBounded) {
  // Regression: per-connection state (threads, renderer/display lists) grew
  // monotonically — disconnects were only reaped at shutdown, so a
  // connect/disconnect churn leaked a thread per visit. Both transports
  // must reap as they go.
  for (const auto transport : kBothTransports) {
    HubConfig cfg;
    cfg.tcp_transport = transport;
    hub::HubTcpServer server(0, cfg);
    constexpr int kCycles = 1000;
    for (int i = 0; i < kCycles; ++i) {
      hub::HubTcpViewer::Options options;
      options.client_id = "churn" + std::to_string(i % 4);
      hub::HubTcpViewer viewer(server.port(), options);
      viewer.close();
      if (i % 100 == 99) {
        // Reaping lags a disconnect by at most the in-flight sessions, never
        // by the visit count.
        EXPECT_LE(server.active_sessions(), 64u) << "cycle " << i;
        EXPECT_LE(server.hub().connected_clients(), 8u) << "cycle " << i;
      }
    }
    EXPECT_TRUE(eventually([&] { return server.active_sessions() == 0; }))
        << "sessions never drained: " << server.active_sessions();
    EXPECT_TRUE(
        eventually([&] { return server.hub().connected_clients() == 0; }));
    server.shutdown();
  }
}

// ------------------------------------------------------------ seeded chaos --

TEST(HubChaos, LatencyChaosFanOutStaysLossless) {
  // Latency-only chaos over the whole TCP hub: handshakes, fan-out sends
  // and acks all get delayed, but every viewer still sees every step in
  // order and bit-intact. The CI chaos job replays this under several
  // TVVIZ_FAULT_SEED values.
  std::uint64_t seed = 1;
  if (const char* env = std::getenv("TVVIZ_FAULT_SEED"))
    seed = std::strtoull(env, nullptr, 10);
  fault::ScopedFaultPlan scoped(
      fault::FaultPlan::latency_chaos(seed, /*rate=*/0.5, /*max_ms=*/2.0));

  hub::HubTcpServer server;
  constexpr int kSteps = 6;
  hub::HubTcpViewer::Options o;
  o.queue_frames = 2 * kSteps;
  std::vector<std::unique_ptr<hub::HubTcpViewer>> viewers;
  for (int k = 0; k < 2; ++k)
    viewers.push_back(std::make_unique<hub::HubTcpViewer>(server.port(), o));

  net::TcpRendererLink renderer(server.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  for (int s = 0; s < kSteps; ++s) {
    NetMessage msg = frame_msg(s, {});
    msg.payload = util::Bytes(64, static_cast<std::uint8_t>(s + 1));
    renderer.send(msg);
  }
  for (auto& v : viewers) {
    for (int s = 0; s < kSteps; ++s) {
      const auto got = v->next();
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->frame_index, s);
      EXPECT_EQ(got->payload, util::Bytes(64, static_cast<std::uint8_t>(s + 1)));
      v->ack(s);
    }
  }
  server.shutdown();
}

TEST(HubChaos, DropChaosAutoReconnectViewerCollectsEveryStep) {
  // Probabilistic connection drops on every send: connections (including
  // reconnected ones) keep dying mid-stream, and the auto-reconnect viewer
  // must still assemble the complete run from resume replays.
  std::uint64_t seed = 1;
  if (const char* env = std::getenv("TVVIZ_FAULT_SEED"))
    seed = std::strtoull(env, nullptr, 10);
  fault::FaultPlan plan;
  plan.seed = seed;
  plan.send_drop_rate = 0.05;
  fault::ScopedFaultPlan scoped(plan);

  constexpr int kSteps = 12;
  hub::HubTcpServer server;

  hub::HubTcpViewer::Options o;
  o.client_id = "chaosbird";
  o.auto_reconnect = true;
  o.retry.max_attempts = 8;
  o.retry.base_delay_ms = 2.0;
  o.retry.max_delay_ms = 50.0;
  o.retry.io_timeout_ms = 2000.0;
  o.queue_frames = 2 * kSteps;
  hub::HubTcpViewer viewer(server.port(), o);

  auto renderer = server.hub().connect_renderer();
  for (int s = 0; s < kSteps; ++s) {
    NetMessage msg = frame_msg(s, {});
    msg.payload = util::Bytes(64, static_cast<std::uint8_t>(s + 1));
    renderer->send(msg);
  }

  std::set<int> seen;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (seen.size() < static_cast<std::size_t>(kSteps) &&
         std::chrono::steady_clock::now() < deadline) {
    const auto msg = viewer.next();
    ASSERT_TRUE(msg.has_value()) << "stream ended before every step arrived";
    if (msg->type != MsgType::kFrame) continue;
    ASSERT_EQ(msg->payload.size(), 64u);
    for (const auto byte : msg->payload)
      ASSERT_EQ(byte, static_cast<std::uint8_t>(msg->frame_index + 1));
    seen.insert(msg->frame_index);
    viewer.ack(msg->frame_index);
  }
  for (int s = 0; s < kSteps; ++s)
    EXPECT_TRUE(seen.count(s)) << "step " << s << " never displayed";

  viewer.close();
  server.shutdown();
}

TEST(HubChaos, MidHandshakeDeathDoesNotWedgeHub) {
  // The first connection dies mid-hello (its first frame is truncated and
  // the socket killed): the server must treat the partial hello as a
  // disconnect, not an accept-path failure — the auto-reconnect viewer
  // retries onto a healthy connection and the hub keeps serving others.
  std::uint64_t seed = 1;
  if (const char* env = std::getenv("TVVIZ_FAULT_SEED"))
    seed = std::strtoull(env, nullptr, 10);
  fault::FaultPlan plan;
  plan.seed = seed;
  plan.truncate_frame(/*frame=*/0, /*conn=*/0);
  fault::ScopedFaultPlan scoped(plan);

  hub::HubTcpServer server;
  constexpr int kSteps = 6;
  hub::HubTcpViewer::Options o;
  o.client_id = "phoenix";
  o.auto_reconnect = true;
  o.retry.max_attempts = 8;
  o.retry.base_delay_ms = 2.0;
  o.retry.max_delay_ms = 50.0;
  o.retry.io_timeout_ms = 2000.0;
  o.queue_frames = 2 * kSteps;
  hub::HubTcpViewer viewer(server.port(), o);

  auto renderer = server.hub().connect_renderer();
  for (int s = 0; s < kSteps; ++s) {
    NetMessage msg = frame_msg(s, {});
    msg.payload = util::Bytes(64, static_cast<std::uint8_t>(s + 1));
    renderer->send(msg);
  }
  std::set<int> seen;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (seen.size() < static_cast<std::size_t>(kSteps) &&
         std::chrono::steady_clock::now() < deadline) {
    const auto msg = viewer.next();
    ASSERT_TRUE(msg.has_value()) << "stream ended before every step arrived";
    if (msg->type != MsgType::kFrame) continue;
    seen.insert(msg->frame_index);
    viewer.ack(msg->frame_index);
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kSteps));
  // The hub is not wedged: a second, unrelated viewer still handshakes.
  hub::HubTcpViewer bystander(server.port());
  EXPECT_FALSE(bystander.assigned_id().empty());
  viewer.close();
  server.shutdown();
}

TEST(HubChaos, StalledReaderIsEvictedNotBlocking) {
  // A client that completes the handshake and then never reads again fills
  // its socket buffer; the per-connection I/O deadline must convert the
  // blocked fan-out send into an eviction (net.hub.stalled_evictions) while
  // a healthy viewer alongside stays lossless.
  std::uint64_t seed = 1;
  if (const char* env = std::getenv("TVVIZ_FAULT_SEED"))
    seed = std::strtoull(env, nullptr, 10);
  fault::ScopedFaultPlan scoped(
      fault::FaultPlan::latency_chaos(seed, /*rate=*/0.1, /*max_ms=*/1.0));

  HubConfig cfg;
  // Long enough that a healthy-but-scheduler-starved reader (TSan, loaded
  // CI) is not mistaken for a stalled one; the truly stalled socket still
  // hits it within the test deadline.
  cfg.tcp_io_timeout_ms = 500.0;
  cfg.tcp_workers = 2;
  cfg.client_queue_frames = 4;
  hub::HubTcpServer server(0, cfg);
  const auto evictions_before =
      obs::counter("net.hub.stalled_evictions").value();

  auto stalled = net::TcpConnection::connect_local(server.port());
  {
    net::HelloInfo hello;
    hello.role = "display";
    hello.client_id = "molasses";
    stalled->send_message(net::make_hello(hello));
    const auto ack = stalled->recv_message();
    ASSERT_TRUE(ack.has_value());
    ASSERT_EQ(ack->type, MsgType::kHelloAck);
  }  // ...and from here on, never reads again.

  constexpr int kSteps = 12;
  hub::HubTcpViewer::Options o;
  o.client_id = "healthy";
  o.queue_frames = 2 * kSteps;
  // If a loaded machine does get the healthy viewer evicted too, it must
  // recover by the normal means: reconnect and resume from its last ack.
  o.auto_reconnect = true;
  o.retry.max_attempts = 8;
  o.retry.base_delay_ms = 2.0;
  o.retry.max_delay_ms = 50.0;
  o.retry.io_timeout_ms = 5000.0;
  hub::HubTcpViewer viewer(server.port(), o);

  auto renderer = server.hub().connect_renderer();
  for (int s = 0; s < kSteps; ++s) {
    NetMessage msg = frame_msg(s, {});
    // Sized so blocking is guaranteed by byte conservation: the 4-deep
    // drop-oldest client queue means at least the final 4 frames are
    // attempted, and 4 x 2 MiB exceeds what a never-reading peer can
    // absorb (sndbuf autotunes to tcp_wmem max 4 MiB; the receive window
    // stays near its 128 KiB initial size when the peer never reads).
    msg.payload = util::Bytes(1 << 21, static_cast<std::uint8_t>(seed + s));
    renderer->send(msg);
  }
  std::set<int> seen;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (seen.size() < static_cast<std::size_t>(kSteps) &&
         std::chrono::steady_clock::now() < deadline) {
    const auto got = viewer.next();
    ASSERT_TRUE(got.has_value()) << "stream ended before every step arrived";
    if (got->type != MsgType::kFrame) continue;
    seen.insert(got->frame_index);
    viewer.ack(got->frame_index);
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kSteps));
  EXPECT_TRUE(eventually([&] {
    return obs::counter("net.hub.stalled_evictions").value() >
           evictions_before;
  })) << "the stalled reader was never evicted";
  EXPECT_TRUE(
      eventually([&] { return server.hub().connected_clients() == 1; }));
  viewer.close();
  server.shutdown();
}

TEST(HubChaos, ReconnectWithResumeThroughEpoll) {
  // Every connection dies after a fixed byte budget — enough for the
  // handshake plus a few frames, so the run can only complete through
  // repeated reconnect-with-resume cycles over the epoll transport.
  std::uint64_t seed = 1;
  if (const char* env = std::getenv("TVVIZ_FAULT_SEED"))
    seed = std::strtoull(env, nullptr, 10);
  fault::FaultPlan plan;
  plan.seed = seed;
  plan.drop_after_bytes(800);
  fault::ScopedFaultPlan scoped(plan);
  const auto reconnects_before = obs::counter("net.retry.reconnects").value();

  constexpr int kSteps = 12;
  hub::HubTcpServer server;
  hub::HubTcpViewer::Options o;
  o.client_id = "resumer";
  o.auto_reconnect = true;
  o.retry.max_attempts = 8;
  o.retry.base_delay_ms = 2.0;
  o.retry.max_delay_ms = 50.0;
  o.retry.io_timeout_ms = 2000.0;
  o.queue_frames = 2 * kSteps;
  hub::HubTcpViewer viewer(server.port(), o);

  auto renderer = server.hub().connect_renderer();
  for (int s = 0; s < kSteps; ++s) {
    NetMessage msg = frame_msg(s, {});
    msg.payload = util::Bytes(64, static_cast<std::uint8_t>(s + 1));
    renderer->send(msg);
  }
  std::set<int> seen;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (seen.size() < static_cast<std::size_t>(kSteps) &&
         std::chrono::steady_clock::now() < deadline) {
    const auto msg = viewer.next();
    ASSERT_TRUE(msg.has_value()) << "stream ended before every step arrived";
    if (msg->type != MsgType::kFrame) continue;
    for (const auto byte : msg->payload)
      ASSERT_EQ(byte, static_cast<std::uint8_t>(msg->frame_index + 1));
    seen.insert(msg->frame_index);
    viewer.ack(msg->frame_index);
  }
  for (int s = 0; s < kSteps; ++s)
    EXPECT_TRUE(seen.count(s)) << "step " << s << " never displayed";
  EXPECT_GT(obs::counter("net.retry.reconnects").value(), reconnects_before);
  viewer.close();
  server.shutdown();
}

// --------------------------------------------------------- full session ----

TEST(HubSession, MatchesSingleClientPipelineLosslessly) {
  core::SessionConfig cfg;
  cfg.dataset = field::scaled(field::turbulent_jet_desc(), 6, 4);
  cfg.processors = 4;
  cfg.groups = 2;
  cfg.image_width = cfg.image_height = 40;
  cfg.codec = "lzo";
  cfg.keep_frames = true;
  const auto single = core::run_session(cfg);
  cfg.use_hub = true;
  cfg.hub_clients = 3;
  const auto fanned = core::run_session(cfg);
  ASSERT_EQ(single.displayed.size(), fanned.displayed.size());
  for (std::size_t i = 0; i < single.displayed.size(); ++i)
    EXPECT_TRUE(
        std::isinf(render::psnr(single.displayed[i], fanned.displayed[i])));
  // The primary plus two auxiliary viewers, all fully served.
  ASSERT_EQ(fanned.hub_client_stats.size(), 3u);
  for (const auto& c : fanned.hub_client_stats) {
    EXPECT_EQ(c.steps_skipped, 0u) << c.id;
    EXPECT_EQ(c.last_acked_step, 3) << c.id;
  }
}

// ------------------------------------------------- protocol v4 (depth) ----

/// A depth-container frame: "raw" color bytes wrapped with a fake encoded
/// depth plane (the hub treats both halves as opaque).
NetMessage depth_frame_msg(int step) {
  NetMessage color = frame_msg(step, {1, 2, 3, 4});
  return net::make_depth_frame(color, util::Bytes(16, 0xAB));
}

TEST(HubTcpDepth, DepthContainerReachesWantingViewerIntact) {
  hub::HubTcpServer server;
  hub::HubTcpViewer::Options o;
  o.client_id = "warper";
  o.wants_depth = true;
  hub::HubTcpViewer viewer(server.port(), o);
  net::TcpRendererLink renderer(server.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  renderer.send(depth_frame_msg(0));
  const auto got = viewer.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(net::is_depth_frame(*got));
  const auto parts = net::split_depth_frame(*got);
  EXPECT_EQ(parts.color.codec, "raw");
  EXPECT_EQ(parts.color.payload, util::Bytes({1, 2, 3, 4}));
  EXPECT_EQ(parts.depth_plane, util::Bytes(16, 0xAB));
  server.shutdown();
}

TEST(HubTcpDepth, DepthStrippedForViewerWithoutCapability) {
  // A viewer that never announced wants_depth must receive a plain frame an
  // old decoder understands: inner codec name, color-only payload.
  static obs::Counter& stripped = obs::counter("net.hub.depth_stripped");
  const auto before = stripped.value();
  hub::HubTcpServer server;
  hub::HubTcpViewer viewer(server.port());  // defaults: no wants_depth
  net::TcpRendererLink renderer(server.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  renderer.send(depth_frame_msg(3));
  const auto got = viewer.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_FALSE(net::is_depth_frame(*got));
  EXPECT_EQ(got->codec, "raw");
  EXPECT_EQ(got->frame_index, 3);
  EXPECT_EQ(got->payload, util::Bytes({1, 2, 3, 4}));
  EXPECT_GE(stripped.value(), before + 1);
  server.shutdown();
}

TEST(HubTcpDepth, V4RefusalDowngradesOneRungAndSticks) {
  // Against a hub capped at v3, a v4 hello is refused once; the ladder must
  // step exactly one rung (v4 -> v3, keeping wants_frame_refs alive) and
  // stay there for later reconnects.
  hub::HubConfig cfg;
  cfg.max_protocol_version = 3;
  hub::HubTcpServer server(0, cfg);
  hub::HubTcpViewer::Options o;
  o.client_id = "stepper";
  o.wants_depth = true;
  hub::HubTcpViewer viewer(server.port(), o);
  EXPECT_EQ(viewer.negotiated_version(), 3u);
  EXPECT_FALSE(viewer.downgraded());  // v2 -> v1 is the lossy rung; not taken
  net::TcpRendererLink renderer(server.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  renderer.send(depth_frame_msg(0));
  const auto got = viewer.next();
  ASSERT_TRUE(got.has_value());
  // The v3 session has no depth capability, so the hub strips the plane.
  EXPECT_FALSE(net::is_depth_frame(*got));
  EXPECT_EQ(got->payload, util::Bytes({1, 2, 3, 4}));
  server.shutdown();
}

TEST(HubTcpDepth, FullLadderStillReachesV1) {
  // v4 -> v3 -> v2 -> v1 in one handshake loop against a v1-only hub.
  hub::HubConfig cfg;
  cfg.max_protocol_version = 1;
  hub::HubTcpServer server(0, cfg);
  hub::HubTcpViewer::Options o;
  o.wants_depth = true;
  o.allow_downgrade = true;
  hub::HubTcpViewer viewer(server.port(), o);
  EXPECT_EQ(viewer.negotiated_version(), 1u);
  EXPECT_TRUE(viewer.downgraded());
  net::TcpRendererLink renderer(server.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  renderer.send(depth_frame_msg(0));
  const auto got = viewer.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_FALSE(net::is_depth_frame(*got));
  server.shutdown();
}

TEST(HubSession, RunsOverTcpWithSlowClientInProcess) {
  core::SessionConfig cfg;
  cfg.dataset = field::scaled(field::turbulent_jet_desc(), 8, 3);
  cfg.processors = 2;
  cfg.groups = 1;
  cfg.image_width = cfg.image_height = 24;
  cfg.codec = "raw";
  cfg.use_hub = true;
  cfg.use_tcp = true;
  cfg.hub_clients = 2;
  const auto result = core::run_session(cfg);
  EXPECT_EQ(result.frames.size(), 3u);
  ASSERT_EQ(result.hub_client_stats.size(), 2u);
}

}  // namespace
}  // namespace tvviz
