// Integration tests: the real end-to-end remote visualization session —
// vmp cluster rendering, binary-swap compositing, compression, display
// daemon transport, client decode, and §5 user control.
#include <gtest/gtest.h>

#include <filesystem>

#include "codec/image_codec.hpp"
#include "compositing/over.hpp"
#include "core/session.hpp"
#include "field/store.hpp"
#include "render/raycast.hpp"
#include "render/transfer.hpp"

namespace tvviz {
namespace {

using core::SessionConfig;
using core::SessionResult;
using render::Image;

SessionConfig small_config() {
  SessionConfig cfg;
  cfg.dataset = field::scaled(field::turbulent_jet_desc(), 6, 6);
  cfg.processors = 4;
  cfg.groups = 2;
  cfg.image_width = 48;
  cfg.image_height = 48;
  cfg.codec = "jpeg+lzo";
  cfg.keep_frames = true;
  return cfg;
}

TEST(Session, DeliversEveryFrame) {
  const SessionConfig cfg = small_config();
  const SessionResult result = core::run_session(cfg);
  EXPECT_EQ(result.frames.size(), 6u);
  EXPECT_EQ(result.displayed.size(), 6u);
  EXPECT_EQ(result.metrics.frames, 6u);
  EXPECT_GT(result.metrics.overall_time, 0.0);
  EXPECT_GE(result.metrics.overall_time, result.metrics.startup_latency);
  EXPECT_GT(result.wire_bytes, 0u);
  // Compression must actually compress on the wire.
  EXPECT_LT(result.wire_bytes, result.raw_bytes / 4);
}

TEST(Session, TimelinesOrderedPerFrame) {
  const SessionResult result = core::run_session(small_config());
  for (const auto& f : result.frames) {
    EXPECT_LE(f.input_start, f.input_done);
    EXPECT_LE(f.input_done, f.render_done);
    EXPECT_LE(f.render_done, f.composite_done);
    EXPECT_LE(f.composite_done, f.sent);
  }
}

TEST(Session, LosslessTransportMatchesLocalRender) {
  // With a lossless codec and one group, the image the client displays must
  // equal a local single-node render of the same step.
  SessionConfig cfg = small_config();
  cfg.codec = "lzo";
  cfg.processors = 3;
  cfg.groups = 1;
  cfg.dataset.steps = 2;
  const SessionResult result = core::run_session(cfg);
  ASSERT_EQ(result.displayed.size(), 2u);

  render::RayCaster caster(cfg.render_options);
  const render::Camera camera(cfg.image_width, cfg.image_height,
                              cfg.camera_azimuth, cfg.camera_elevation,
                              cfg.camera_zoom);
  const Image local = caster.render_full(field::generate(cfg.dataset, 0),
                                         camera,
                                         render::TransferFunction::fire());
  // Binary-swap + slab tiling should match the local render closely; the
  // only differences are border-gradient shading (ghost = 1) and early
  // termination across slab boundaries.
  EXPECT_GT(render::psnr(local, result.displayed[0]), 32.0);
}

TEST(Session, ParallelCompressionMatchesAssembled) {
  SessionConfig cfg = small_config();
  cfg.codec = "lzo";  // lossless so the two paths must agree exactly
  cfg.dataset.steps = 2;
  const SessionResult assembled = core::run_session(cfg);
  cfg.parallel_compression = true;
  const SessionResult pieces = core::run_session(cfg);
  ASSERT_EQ(assembled.displayed.size(), pieces.displayed.size());
  for (std::size_t i = 0; i < assembled.displayed.size(); ++i) {
    const auto& a = assembled.displayed[i];
    const auto& b = pieces.displayed[i];
    for (int y = 0; y < a.height(); y += 5)
      for (int x = 0; x < a.width(); x += 5) {
        EXPECT_EQ(a.pixel(x, y)[0], b.pixel(x, y)[0]) << x << "," << y;
        EXPECT_EQ(a.pixel(x, y)[2], b.pixel(x, y)[2]) << x << "," << y;
      }
  }
}

TEST(Session, SubImagePiecesCompressWorseThanWholeFrame) {
  // §6: "Compressing each image piece independent of other pieces would
  // result in poor compression rates."
  SessionConfig cfg = small_config();
  cfg.processors = 6;
  cfg.groups = 1;  // six pieces per frame
  cfg.dataset.steps = 3;
  cfg.image_width = cfg.image_height = 96;
  const SessionResult assembled = core::run_session(cfg);
  cfg.parallel_compression = true;
  const SessionResult pieces = core::run_session(cfg);
  EXPECT_GT(pieces.wire_bytes, assembled.wire_bytes);
}

TEST(Session, StoreBackedInputMatchesGenerated) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("tvviz_session_store_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  SessionConfig cfg = small_config();
  cfg.codec = "raw";
  cfg.dataset.steps = 2;
  field::VolumeStore store(dir);
  store.materialize(cfg.dataset);

  const SessionResult generated = core::run_session(cfg);
  cfg.store_dir = dir;
  const SessionResult from_disk = core::run_session(cfg);
  ASSERT_EQ(generated.displayed.size(), from_disk.displayed.size());
  for (std::size_t i = 0; i < generated.displayed.size(); ++i)
    EXPECT_TRUE(std::isinf(
        render::psnr(generated.displayed[i], from_disk.displayed[i])));
  std::filesystem::remove_all(dir);
}

TEST(Session, ControlEventChangesLaterFramesOnly) {
  SessionConfig cfg = small_config();
  cfg.codec = "raw";
  cfg.dataset.steps = 8;
  cfg.groups = 1;  // single group: strict frame order at the client
  cfg.processors = 2;

  // Reference run without control events.
  const SessionResult plain = core::run_session(cfg);

  // Push a drastic view change after the first displayed frame.
  SessionConfig controlled = cfg;
  controlled.on_frame = [](int step, const Image&) {
    std::vector<net::ControlEvent> events;
    if (step == 0) {
      net::ControlEvent e;
      e.kind = net::ControlKind::kSetView;
      e.azimuth = 2.6;
      e.elevation = -0.7;
      e.zoom = 1.4;
      events.push_back(e);
    }
    return events;
  };
  const SessionResult steered = core::run_session(controlled);
  ASSERT_EQ(steered.displayed.size(), plain.displayed.size());
  EXPECT_GT(steered.control_events_applied, 0);
  // Frame 0 rendered before the event: identical.
  EXPECT_TRUE(std::isinf(render::psnr(plain.displayed[0], steered.displayed[0])));
  // A later frame must reflect the new view.
  EXPECT_LT(render::psnr(plain.displayed.back(), steered.displayed.back()),
            30.0);
}

TEST(Session, StopControlEndsRunEarly) {
  SessionConfig cfg = small_config();
  cfg.dataset.steps = 12;
  cfg.groups = 1;
  cfg.processors = 2;
  cfg.on_frame = [](int step, const Image&) {
    std::vector<net::ControlEvent> events;
    if (step == 2) {
      net::ControlEvent e;
      e.kind = net::ControlKind::kStop;
      events.push_back(e);
    }
    return events;
  };
  const SessionResult result = core::run_session(cfg);
  EXPECT_LT(result.frames.size(), 12u);
  EXPECT_GE(result.frames.size(), 3u);
}

TEST(Session, CodecSwitchMidRun) {
  SessionConfig cfg = small_config();
  cfg.codec = "raw";
  cfg.dataset.steps = 8;
  cfg.groups = 1;
  cfg.processors = 2;
  cfg.on_frame = [](int step, const Image&) {
    std::vector<net::ControlEvent> events;
    if (step == 1) {
      net::ControlEvent e;
      e.kind = net::ControlKind::kSetCodec;
      e.name = "jpeg+lzo";
      events.push_back(e);
    }
    return events;
  };
  const SessionResult result = core::run_session(cfg);
  EXPECT_EQ(result.displayed.size(), 8u);
  // Wire bytes must be far below the all-raw equivalent once JPEG kicks in.
  EXPECT_LT(result.wire_bytes, result.raw_bytes / 2);
}

TEST(Session, GroupCountsDivideWork) {
  // L groups each render steps g, g+L, ... (§3's hybrid approach).
  SessionConfig cfg = small_config();
  cfg.dataset.steps = 6;
  cfg.processors = 4;
  cfg.groups = 2;
  const SessionResult result = core::run_session(cfg);
  for (const auto& f : result.frames) EXPECT_EQ(f.group, f.step % 2);
}

TEST(Session, InvalidConfigThrows) {
  SessionConfig cfg = small_config();
  cfg.groups = 9;  // > processors
  EXPECT_THROW(core::run_session(cfg), std::invalid_argument);
}

TEST(Session, WarpViewerRecordsQuality) {
  // The trans-Pacific orbit preset with the TCP transport swapped out for the
  // in-process hub: depth containers reach the viewer intact and every frame
  // after the first is predicted by reprojection before the real one lands.
  SessionConfig cfg = core::trans_pacific_orbit_preset();
  cfg.use_tcp = false;
  cfg.dataset.steps = 4;
  cfg.keep_frames = true;
  const SessionResult result = core::run_session(cfg);
  EXPECT_EQ(result.displayed.size(), 4u);
  EXPECT_EQ(result.warp_frames, 3);
  EXPECT_LE(result.warp_mean_hole_ratio, 0.15);
  EXPECT_GT(result.warp_mean_psnr, 10.0);
}

TEST(Session, UseWarpRequiresHubAndAssembled) {
  SessionConfig no_hub = small_config();
  no_hub.use_warp = true;  // but use_hub stays false
  EXPECT_THROW(core::run_session(no_hub), std::invalid_argument);

  SessionConfig pieces = core::trans_pacific_orbit_preset();
  pieces.use_tcp = false;
  pieces.compression = SessionConfig::Compression::kParallelPieces;
  EXPECT_THROW(core::run_session(pieces), std::invalid_argument);
}

TEST(Session, NonPowerOfTwoGroupSizes) {
  SessionConfig cfg = small_config();
  cfg.processors = 5;
  cfg.groups = 1;  // one group of 5 (binary-swap folds the extra rank)
  cfg.dataset.steps = 2;
  const SessionResult result = core::run_session(cfg);
  EXPECT_EQ(result.displayed.size(), 2u);
  int nonzero = 0;
  for (int y = 0; y < 48; ++y)
    for (int x = 0; x < 48; ++x)
      nonzero += result.displayed[0].pixel(x, y)[0] > 0 ? 1 : 0;
  EXPECT_GT(nonzero, 10);
}

}  // namespace
}  // namespace tvviz
