// Tests for the deterministic fault-injection subsystem (src/fault) and the
// recovery policies threaded through the transport: seeded plans replay
// bit-identically, every FaultKind does what it says at the socket layer,
// backoff/retry behaves per policy, and a viewer ridden by mid-frame
// disconnects recovers end-to-end without ever surfacing a partial frame.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <set>
#include <thread>

#include "fault/fault.hpp"
#include "fault/retry.hpp"
#include "hub/tcp_hub.hpp"
#include "net/errors.hpp"
#include "net/tcp.hpp"
#include "obs/counters.hpp"
#include "util/rng.hpp"

namespace tvviz {
namespace {

using fault::Backoff;
using fault::FaultKind;
using fault::FaultPlan;
using fault::RetryPolicy;
using fault::ScopedFaultPlan;
using net::MsgType;
using net::NetMessage;
using net::SocketError;
using net::TcpConnection;
using net::TimeoutError;
using net::WireError;

/// The CI chaos job pins this; locally the default seed applies.
std::uint64_t env_seed() {
  const char* env = std::getenv("TVVIZ_FAULT_SEED");
  return env ? std::strtoull(env, nullptr, 10) : 1;
}

NetMessage frame_msg(int step, std::size_t payload_bytes) {
  NetMessage msg;
  msg.type = MsgType::kFrame;
  msg.frame_index = step;
  msg.codec = "raw";
  msg.payload = util::Bytes(payload_bytes, static_cast<std::uint8_t>(step + 1));
  return msg;
}

/// A connected AF_UNIX stream pair wrapped in TcpConnections. Deterministic
/// fault-plan addressing: `a` is connection 0, `b` is connection 1 (creation
/// order since install).
struct ConnPair {
  ConnPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = std::make_unique<TcpConnection>(fds[0]);
    b = std::make_unique<TcpConnection>(fds[1]);
  }
  std::unique_ptr<TcpConnection> a, b;
};

// ------------------------------------------------------- backoff policy ----

TEST(Retry, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy policy;
  policy.base_delay_ms = 5.0;
  policy.max_delay_ms = 35.0;
  policy.jitter = 0.0;  // exact values
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(policy.backoff_ms(1, rng), 0.0);   // first try: no wait
  EXPECT_DOUBLE_EQ(policy.backoff_ms(2, rng), 5.0);
  EXPECT_DOUBLE_EQ(policy.backoff_ms(3, rng), 10.0);
  EXPECT_DOUBLE_EQ(policy.backoff_ms(4, rng), 20.0);
  EXPECT_DOUBLE_EQ(policy.backoff_ms(5, rng), 35.0);  // capped
  EXPECT_DOUBLE_EQ(policy.backoff_ms(9, rng), 35.0);  // stays capped
}

TEST(Retry, JitterStaysWithinTheConfiguredBand) {
  RetryPolicy policy;
  policy.base_delay_ms = 8.0;
  policy.max_delay_ms = 8.0;
  policy.jitter = 0.25;
  util::Rng rng(env_seed());
  for (int i = 0; i < 200; ++i) {
    const double d = policy.backoff_ms(2, rng);
    EXPECT_GE(d, 8.0 * 0.75);
    EXPECT_LT(d, 8.0 * 1.25);
  }
}

TEST(Retry, JitterIsDeterministicForTheSameSeed) {
  RetryPolicy policy;
  util::Rng r1(42), r2(42);
  for (int attempt = 1; attempt <= 6; ++attempt)
    EXPECT_DOUBLE_EQ(policy.backoff_ms(attempt, r1),
                     policy.backoff_ms(attempt, r2));
}

TEST(Retry, BackoffGrantsExactlyMaxAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_delay_ms = 0.1;
  Backoff backoff(policy, util::Rng(7));
  int granted = 0;
  while (backoff.next()) ++granted;
  EXPECT_EQ(granted, 3);
  EXPECT_EQ(backoff.attempts(), 3);
  EXPECT_FALSE(backoff.next());  // still exhausted
  backoff.reset();
  EXPECT_TRUE(backoff.next());  // reset restores the budget
}

// ----------------------------------------------- plan replay determinism ----

/// One single-threaded chaos scenario: `a` sends `messages` frames through
/// the installed plan, `b` receives what survives. Returns the injector's
/// canonical event log.
std::string run_chaos_scenario(FaultPlan plan, int messages) {
  ScopedFaultPlan scoped(std::move(plan));
  ConnPair pair;
  pair.b->set_io_timeout_ms(500.0);  // corrupt prefixes must not hang the test
  for (int s = 0; s < messages; ++s) {
    try {
      pair.a->send_message(frame_msg(s, 32));
    } catch (const std::exception&) {
      break;  // injected drop/truncate killed the socket: scenario over
    }
    try {
      auto got = pair.b->recv_message();
      if (!got) break;
    } catch (const std::exception&) {
      break;
    }
  }
  return scoped.injector().event_log();
}

TEST(FaultPlanTest, SameSeedReplaysByteIdenticalEventLog) {
  FaultPlan plan;
  plan.seed = env_seed();
  plan.send_delay_rate = 0.5;
  plan.send_delay_max_ms = 0.2;  // keep the sleeps negligible
  plan.recv_stall_rate = 0.4;
  plan.recv_stall_max_ms = 0.2;
  plan.send_corrupt_rate = 0.1;
  plan.delay_send_ms(0.05, /*frame=*/3);

  const std::string first = run_chaos_scenario(plan, 24);
  const std::string second = run_chaos_scenario(plan, 24);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "same plan, same scenario, different schedule";
}

TEST(FaultPlanTest, DifferentSeedsProduceDifferentSchedules) {
  FaultPlan plan;
  plan.send_delay_rate = 0.5;
  plan.send_delay_max_ms = 0.1;
  plan.seed = env_seed();
  const std::string one = run_chaos_scenario(plan, 24);
  plan.seed = env_seed() + 1;
  const std::string two = run_chaos_scenario(plan, 24);
  EXPECT_NE(one, two);
}

TEST(FaultPlanTest, LatencyChaosIsDeterministicAndLossless) {
  // latency_chaos must never lose a frame: every message sent arrives.
  ScopedFaultPlan scoped(FaultPlan::latency_chaos(env_seed(), 0.5, 0.2));
  ConnPair pair;
  for (int s = 0; s < 16; ++s) {
    pair.a->send_message(frame_msg(s, 16));
    const auto got = pair.b->recv_message();
    ASSERT_TRUE(got.has_value()) << "latency chaos dropped frame " << s;
    EXPECT_EQ(got->frame_index, s);
  }
  EXPECT_FALSE(scoped.injector().event_log().empty());
}

// ------------------------------------------------- individual FaultKinds ----

TEST(FaultKinds, DelaySendStillDeliversTheFrame) {
  FaultPlan plan;
  plan.delay_send_ms(10.0, /*frame=*/0, /*conn=*/0);
  ScopedFaultPlan scoped(plan);
  ConnPair pair;
  const auto t0 = std::chrono::steady_clock::now();
  pair.a->send_message(frame_msg(0, 8));
  const auto elapsed = std::chrono::duration<double, std::milli>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_GE(elapsed.count(), 8.0);
  const auto got = pair.b->recv_message();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->frame_index, 0);
  const auto events = scoped.injector().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FaultKind::kDelaySend);
  EXPECT_EQ(events[0].conn, 0);
}

TEST(FaultKinds, StallRecvDelaysTheReceive) {
  FaultPlan plan;
  plan.stall_recv_ms(15.0, /*frame=*/0, /*conn=*/1);
  ScopedFaultPlan scoped(plan);
  ConnPair pair;
  pair.a->send_message(frame_msg(3, 8));
  const auto t0 = std::chrono::steady_clock::now();
  const auto got = pair.b->recv_message();
  const auto elapsed = std::chrono::duration<double, std::milli>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_GE(elapsed.count(), 12.0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->frame_index, 3);
}

TEST(FaultKinds, TruncateFrameKillsSenderAndDesyncsReceiver) {
  FaultPlan plan;
  plan.seed = env_seed();
  plan.truncate_frame(/*frame=*/1, /*conn=*/0);
  ScopedFaultPlan scoped(plan);
  ConnPair pair;
  pair.a->send_message(frame_msg(0, 64));  // frame 0 passes untouched
  EXPECT_THROW(pair.a->send_message(frame_msg(1, 64)), SocketError);
  const auto ok = pair.b->recv_message();
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->frame_index, 0);
  // The second frame was cut strictly inside: a partial prefix or body is a
  // WireError, never a clean EOF and never a surfaced partial frame.
  EXPECT_THROW(pair.b->recv_message(), WireError);
  EXPECT_EQ(scoped.injector().events().size(), 1u);
}

TEST(FaultKinds, DropAfterBytesFiresOnceMidStream) {
  FaultPlan plan;
  plan.seed = env_seed();
  // Frame 0 (~90 wire bytes) passes; frame 1 crosses the threshold.
  plan.drop_after_bytes(100, /*conn=*/0);
  ScopedFaultPlan scoped(plan);
  ConnPair pair;
  pair.a->send_message(frame_msg(0, 64));
  EXPECT_THROW(pair.a->send_message(frame_msg(1, 64)), SocketError);
  const auto ok = pair.b->recv_message();
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->frame_index, 0);
  EXPECT_THROW(pair.b->recv_message(), WireError);  // cut mid-frame
  const auto events = scoped.injector().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FaultKind::kDropAfterBytes);
}

TEST(FaultKinds, CorruptFrameNeverSurvivesUnnoticed) {
  // Corruption hits the length prefix or header scratch bytes. Whatever the
  // seed picks, the receiver must never quietly obtain the original frame:
  // it throws (WireError on desync, TimeoutError when a corrupt length
  // leaves it starving) or yields a message that differs from what was sent.
  FaultPlan plan;
  plan.seed = env_seed();
  plan.corrupt_frame(/*frame=*/0, /*conn=*/0);
  ScopedFaultPlan scoped(plan);
  ConnPair pair;
  pair.b->set_io_timeout_ms(200.0);
  const NetMessage sent = frame_msg(5, 32);
  pair.a->send_message(sent);
  bool detected = false;
  try {
    const auto got = pair.b->recv_message();
    if (!got) {
      detected = true;
    } else {
      detected = got->type != sent.type ||
                 got->frame_index != sent.frame_index ||
                 got->piece != sent.piece ||
                 got->piece_count != sent.piece_count ||
                 got->codec != sent.codec ||
                 util::Bytes(got->payload.begin(), got->payload.end()) !=
                     util::Bytes(sent.payload.begin(), sent.payload.end());
    }
  } catch (const std::exception&) {
    detected = true;
  }
  EXPECT_TRUE(detected);
  const auto events = scoped.injector().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FaultKind::kCorruptFrame);
}

// ----------------------------------------------- connect refusal + retry ----

TEST(FaultRecovery, ConnectRetryRidesOutInjectedRefusals) {
  net::TcpDaemonServer server;
  FaultPlan plan;
  plan.refuse_connects(2);
  ScopedFaultPlan scoped(plan);

  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.base_delay_ms = 1.0;
  policy.max_delay_ms = 4.0;
  auto conn =
      TcpConnection::connect_local_retry(server.port(), policy, util::Rng(3));
  ASSERT_NE(conn, nullptr);  // third attempt got through
  const auto events = scoped.injector().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, FaultKind::kRefuseConnect);
  EXPECT_EQ(events[1].kind, FaultKind::kRefuseConnect);
  // Close our half first: the daemon's accept loop is waiting for this
  // connection's hello, and a clean EOF is what lets it get back to
  // accept() — where shutdown() can then unblock it.
  conn.reset();
  server.shutdown();
}

TEST(FaultRecovery, ConnectRetryGivesUpAfterMaxAttempts) {
  net::TcpDaemonServer server;
  FaultPlan plan;
  plan.refuse_connects(10);
  ScopedFaultPlan scoped(plan);
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.base_delay_ms = 0.5;
  EXPECT_THROW(
      TcpConnection::connect_local_retry(server.port(), policy, util::Rng(3)),
      SocketError);
  EXPECT_EQ(scoped.injector().events().size(), 2u);  // both attempts refused
  server.shutdown();
}

// -------------------------------------------------- deadlines + timeouts ----

TEST(FaultRecovery, StalledPeerTripsTheIoDeadline) {
  ConnPair pair;  // no plan installed: a real silent peer
  pair.b->set_io_timeout_ms(40.0);
  static obs::Counter& timeouts = obs::counter("net.tcp.io_timeouts");
  const auto before = timeouts.value();
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(pair.b->recv_message(), TimeoutError);
  const auto elapsed = std::chrono::duration<double, std::milli>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_GE(elapsed.count(), 35.0);
  EXPECT_LT(elapsed.count(), 2000.0);
  EXPECT_GT(timeouts.value(), before);
  // The connection survives a timeout: data arriving later is received.
  pair.a->send_message(frame_msg(1, 8));
  const auto got = pair.b->recv_message();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->frame_index, 1);
}

TEST(FaultRecovery, MidPrefixRecvTimeoutIsAWireErrorNotRetryable) {
  // A peer that sends 2 of the 4 length-prefix bytes and then stalls: the
  // expired deadline must NOT surface as a retryable TimeoutError — the two
  // consumed bytes are gone, so a retried recv_message would misparse the
  // stream from mid-prefix. Regression for the serve_display reader, which
  // retries recv_message in place on TimeoutError.
  ConnPair pair;
  pair.b->set_io_timeout_ms(30.0);
  static obs::Counter& desync = obs::counter("net.wire.desync_timeouts");
  const auto before = desync.value();
  const std::uint8_t half_prefix[2] = {0x10, 0x00};
  ASSERT_EQ(::send(pair.a->fd(), half_prefix, sizeof half_prefix, 0),
            static_cast<ssize_t>(sizeof half_prefix));
  EXPECT_THROW(pair.b->recv_message(), WireError);
  EXPECT_GT(desync.value(), before);
}

TEST(FaultRecovery, BodyTimeoutAfterPrefixIsAWireError) {
  // The whole prefix arrives but the body never does: the prefix is already
  // consumed, so even a zero-progress body timeout would make a retried
  // recv_message parse body bytes as a fresh prefix. Must be WireError.
  ConnPair pair;
  pair.b->set_io_timeout_ms(30.0);
  const std::uint8_t prefix[4] = {100, 0, 0, 0};  // "100-byte body follows"
  ASSERT_EQ(::send(pair.a->fd(), prefix, sizeof prefix, 0),
            static_cast<ssize_t>(sizeof prefix));
  EXPECT_THROW(pair.b->recv_message(), WireError);
}

TEST(FaultRecovery, MidFrameSendTimeoutFailsTheConnection) {
  // A stalled receiver with a full socket buffer: the first sendmsg() pushes
  // part of the frame to the wire, then the deadline expires. Retrying the
  // send would resend the length prefix mid-frame and desynchronize the
  // receiver, so the transport must fail the connection (SocketError), not
  // surface a retryable TimeoutError. Regression for the display pump's
  // backoff-and-retry loop.
  ConnPair pair;
  const int tiny = 1;  // clamped up to the kernel minimum — still far
                       // smaller than the frame below
  ASSERT_EQ(::setsockopt(pair.a->fd(), SOL_SOCKET, SO_SNDBUF, &tiny,
                         sizeof tiny),
            0);
  pair.a->set_io_timeout_ms(30.0);
  static obs::Counter& partial = obs::counter("net.wire.partial_send");
  const auto before = partial.value();
  EXPECT_THROW(pair.a->send_message(frame_msg(0, 4u << 20)), SocketError);
  EXPECT_GT(partial.value(), before);
}

TEST(FaultRecovery, SendTimeoutWithNothingSentStaysRetryable) {
  // The buffer is already full when send_message starts, so zero bytes of
  // the frame go out: this is the one send-timeout shape that stays a
  // retryable TimeoutError, and the connection survives it.
  ConnPair pair;
  const int tiny = 1;
  ASSERT_EQ(::setsockopt(pair.a->fd(), SOL_SOCKET, SO_SNDBUF, &tiny,
                         sizeof tiny),
            0);
  // Fill the send buffer below the framing layer (the receiver never reads),
  // then top it off byte by byte so zero space remains — a few free bytes
  // would let the frame make partial progress, which is the *other* test.
  std::uint8_t junk[1024] = {};
  while (::send(pair.a->fd(), junk, sizeof junk, MSG_DONTWAIT) > 0) {
  }
  while (::send(pair.a->fd(), junk, 1, MSG_DONTWAIT) > 0) {
  }
  ASSERT_TRUE(errno == EAGAIN || errno == EWOULDBLOCK);
  pair.a->set_io_timeout_ms(30.0);
  EXPECT_THROW(pair.a->send_message(frame_msg(0, 64)), TimeoutError);
  // Still open: a second attempt times out again rather than reporting a
  // shut-down socket.
  EXPECT_THROW(pair.a->send_message(frame_msg(0, 64)), TimeoutError);
}

TEST(FaultRecovery, TimeoutsRetryUnderBackoffThenGiveUp) {
  ConnPair pair;
  pair.b->set_io_timeout_ms(15.0);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_delay_ms = 1.0;
  Backoff backoff(policy, util::Rng(11));
  int timeouts_seen = 0;
  std::optional<NetMessage> got;
  while (backoff.next()) {
    try {
      got = pair.b->recv_message();
      break;
    } catch (const TimeoutError&) {
      ++timeouts_seen;
    }
  }
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(timeouts_seen, 3);
  EXPECT_EQ(backoff.attempts(), 3);
}

// ------------------------------------- end-to-end mid-frame recovery -------

TEST(FaultRecovery, MidFrameDisconnectViewerResumesWithoutPartialFrame) {
  // Acceptance scenario: a seeded plan kills the hub->viewer socket in the
  // middle of a frame. The auto-reconnect viewer must recover end-to-end —
  // resume from its last acked step, display every step with intact
  // payloads (no partial frame ever surfaces), and count
  // net.retry.reconnects=1.
  constexpr int kSteps = 10;
  constexpr std::size_t kPayload = 64;

  // The first connection pair is the viewer's client socket and the hub's
  // accepted socket — indices 0 and 1, in whichever order the two threads
  // constructed them. Target both with the same byte budget: only the
  // frame-sending direction ever crosses 300 bytes (the viewer side sends
  // one hello plus a handful of 16-byte acks), so exactly one drop fires,
  // mid-frame, and the reconnected pair (2, 3) is clean.
  FaultPlan plan;
  plan.seed = env_seed();
  plan.drop_after_bytes(300, /*conn=*/0);
  plan.drop_after_bytes(300, /*conn=*/1);
  ScopedFaultPlan scoped(plan);

  static obs::Counter& reconnects = obs::counter("net.retry.reconnects");
  const auto reconnects_before = reconnects.value();

  hub::HubTcpServer server;

  hub::HubTcpViewer::Options options;
  options.client_id = "phoenix";
  options.auto_reconnect = true;
  options.retry.max_attempts = 8;
  options.retry.base_delay_ms = 2.0;
  options.retry.max_delay_ms = 50.0;
  options.retry.io_timeout_ms = 1000.0;
  // The renderer below bursts every frame at once; a bound smaller than
  // kSteps would let the hub's drop-oldest policy discard early steps
  // before the writer ships them — a legitimate loss, but not this test.
  options.queue_frames = 2 * kSteps;
  hub::HubTcpViewer viewer(server.port(), options);

  // Stream the frames only once the viewer is live: a fresh client gets the
  // live stream (no cache replay), and the mid-stream drop must hit while
  // frames are in flight for the recovery to be exercised at all.
  auto renderer = server.hub().connect_renderer();
  for (int s = 0; s < kSteps; ++s) renderer->send(frame_msg(s, kPayload));

  std::set<int> seen;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (seen.size() < static_cast<std::size_t>(kSteps) &&
         std::chrono::steady_clock::now() < deadline) {
    const auto msg = viewer.next();
    ASSERT_TRUE(msg.has_value()) << "stream ended before every step arrived";
    if (msg->type != MsgType::kFrame) continue;
    // Partial frames must never surface: the payload is either whole and
    // intact or the message does not exist.
    ASSERT_EQ(msg->payload.size(), kPayload);
    for (const auto byte : msg->payload)
      ASSERT_EQ(byte, static_cast<std::uint8_t>(msg->frame_index + 1));
    seen.insert(msg->frame_index);
    viewer.ack(msg->frame_index);
  }
  for (int s = 0; s < kSteps; ++s)
    EXPECT_TRUE(seen.count(s)) << "step " << s << " never displayed";

  // Exactly one recovery: the injected drop fired once, on the original
  // frame-sending connection, and the fresh pair is clean.
  EXPECT_EQ(reconnects.value() - reconnects_before, 1u);
  const auto events = scoped.injector().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FaultKind::kDropAfterBytes);
  EXPECT_TRUE(events[0].conn == 0 || events[0].conn == 1);

  viewer.close();
  server.shutdown();
}

TEST(FaultRecovery, ViewerRetriesRefusedConnectsOnFirstContact) {
  FaultPlan plan;
  plan.refuse_connects(2);
  ScopedFaultPlan scoped(plan);

  hub::HubTcpServer server;
  hub::HubTcpViewer::Options options;
  options.client_id = "stubborn";
  options.auto_reconnect = true;
  options.retry.max_attempts = 5;
  options.retry.base_delay_ms = 1.0;
  // The first two connect() calls are refused by the plan; the viewer's
  // constructor must ride them out instead of throwing.
  hub::HubTcpViewer viewer(server.port(), options);
  EXPECT_EQ(viewer.assigned_id(), "stubborn");
  EXPECT_EQ(scoped.injector().events().size(), 2u);
  viewer.close();
  server.shutdown();
}

}  // namespace
}  // namespace tvviz
