// Tests for the virtual message-passing runtime: point-to-point semantics,
// collectives (parameterized over rank counts), sub-communicators, and
// failure propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "vmp/communicator.hpp"

namespace tvviz {
namespace {

using vmp::Cluster;
using vmp::Communicator;
using vmp::kAnySource;
using vmp::kAnyTag;
using vmp::ReduceOp;

util::Bytes bytes_of(std::initializer_list<std::uint8_t> init) {
  return util::Bytes(init);
}

TEST(Vmp, PingPong) {
  Cluster::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, bytes_of({1, 2, 3}));
      const auto reply = comm.recv(1, 8);
      EXPECT_EQ(reply.payload, bytes_of({4, 5}));
    } else {
      const auto msg = comm.recv(0, 7);
      EXPECT_EQ(msg.payload, bytes_of({1, 2, 3}));
      EXPECT_EQ(msg.source, 0);
      EXPECT_EQ(msg.tag, 7);
      comm.send(0, 8, bytes_of({4, 5}));
    }
  });
}

TEST(Vmp, TagSelectiveReceive) {
  Cluster::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, bytes_of({1}));
      comm.send(1, 2, bytes_of({2}));
    } else {
      // Receive out of order by tag.
      EXPECT_EQ(comm.recv(0, 2).payload, bytes_of({2}));
      EXPECT_EQ(comm.recv(0, 1).payload, bytes_of({1}));
    }
  });
}

TEST(Vmp, AnySourceReceivesFromAll) {
  constexpr int kRanks = 5;
  Cluster::run(kRanks, [](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<bool> seen(kRanks, false);
      for (int i = 1; i < kRanks; ++i) {
        const auto msg = comm.recv(kAnySource, kAnyTag);
        EXPECT_FALSE(seen[static_cast<std::size_t>(msg.source)]);
        seen[static_cast<std::size_t>(msg.source)] = true;
        EXPECT_EQ(msg.payload[0], msg.source);
      }
    } else {
      comm.send(0, 3, bytes_of({static_cast<std::uint8_t>(comm.rank())}));
    }
  });
}

TEST(Vmp, FifoPerSourceOrdering) {
  Cluster::run(2, [](Communicator& comm) {
    constexpr int kCount = 200;
    if (comm.rank() == 0) {
      for (int i = 0; i < kCount; ++i)
        comm.send_value<int>(1, 5, i);
    } else {
      for (int i = 0; i < kCount; ++i)
        EXPECT_EQ(comm.recv_value<int>(0, 5), i);
    }
  });
}

TEST(Vmp, ProbeAndTryRecv) {
  Cluster::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      EXPECT_FALSE(comm.try_recv(1, 9).has_value());
      comm.send(1, 4, bytes_of({1}));
      const auto ok = comm.recv(1, 6);
      EXPECT_EQ(ok.payload, bytes_of({2}));
    } else {
      (void)comm.recv(0, 4);
      comm.send(0, 6, bytes_of({2}));
      EXPECT_FALSE(comm.probe(0, 99));
    }
  });
}

TEST(Vmp, SendRecvExchange) {
  Cluster::run(2, [](Communicator& comm) {
    const auto peer = 1 - comm.rank();
    const auto reply = comm.sendrecv(
        peer, 11, bytes_of({static_cast<std::uint8_t>(comm.rank())}));
    EXPECT_EQ(reply.payload[0], peer);
  });
}

class VmpCollectives : public ::testing::TestWithParam<int> {};

TEST_P(VmpCollectives, BarrierSynchronizes) {
  const int p = GetParam();
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  Cluster::run(p, [&](Communicator& comm) {
    before.fetch_add(1);
    comm.barrier();
    if (before.load() != p) violated.store(true);
  });
  EXPECT_FALSE(violated.load());
}

TEST_P(VmpCollectives, BcastFromEveryRoot) {
  const int p = GetParam();
  Cluster::run(p, [&](Communicator& comm) {
    for (int root = 0; root < p; ++root) {
      util::Bytes payload;
      if (comm.rank() == root)
        payload = bytes_of({static_cast<std::uint8_t>(root + 1), 42});
      const auto out = comm.bcast(root, payload);
      ASSERT_EQ(out.size(), 2u);
      EXPECT_EQ(out[0], root + 1);
      EXPECT_EQ(out[1], 42);
    }
  });
}

TEST_P(VmpCollectives, GatherCollectsInRankOrder) {
  const int p = GetParam();
  Cluster::run(p, [&](Communicator& comm) {
    const auto all = comm.gather(
        0, bytes_of({static_cast<std::uint8_t>(comm.rank() * 3)}));
    if (comm.rank() == 0) {
      ASSERT_EQ(static_cast<int>(all.size()), p);
      for (int i = 0; i < p; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)][0], i * 3);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(VmpCollectives, ReduceSumMinMax) {
  const int p = GetParam();
  Cluster::run(p, [&](Communicator& comm) {
    const double r = comm.rank();
    const auto sum = comm.reduce(0, {r, 1.0}, ReduceOp::kSum);
    if (comm.rank() == 0) {
      ASSERT_EQ(sum.size(), 2u);
      EXPECT_DOUBLE_EQ(sum[0], p * (p - 1) / 2.0);
      EXPECT_DOUBLE_EQ(sum[1], p);
    }
    const auto mn = comm.reduce(0, {r}, ReduceOp::kMin);
    if (comm.rank() == 0) {
      EXPECT_DOUBLE_EQ(mn[0], 0.0);
    }
    const auto mx = comm.reduce(0, {r}, ReduceOp::kMax);
    if (comm.rank() == 0) {
      EXPECT_DOUBLE_EQ(mx[0], p - 1.0);
    }
  });
}

TEST_P(VmpCollectives, AllreduceAgreesEverywhere) {
  const int p = GetParam();
  Cluster::run(p, [&](Communicator& comm) {
    const auto out = comm.allreduce({1.0, static_cast<double>(comm.rank())},
                                    ReduceOp::kSum);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_DOUBLE_EQ(out[0], p);
    EXPECT_DOUBLE_EQ(out[1], p * (p - 1) / 2.0);
  });
}

TEST_P(VmpCollectives, SplitByParity) {
  const int p = GetParam();
  Cluster::run(p, [&](Communicator& comm) {
    Communicator sub = comm.split(comm.rank() % 2);
    const int expected_size = comm.rank() % 2 == 0 ? (p + 1) / 2 : p / 2;
    EXPECT_EQ(sub.size(), expected_size);
    EXPECT_EQ(sub.rank(), comm.rank() / 2);
    // Traffic stays inside the split group.
    const auto sum = sub.allreduce({1.0}, ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(sum[0], expected_size);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, VmpCollectives,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8));

TEST(Vmp, SubgroupExplicitMembers) {
  Cluster::run(5, [](Communicator& comm) {
    Communicator sub = comm.subgroup({1, 3, 4});
    if (comm.rank() == 1 || comm.rank() == 3 || comm.rank() == 4) {
      ASSERT_FALSE(sub.is_null());
      EXPECT_EQ(sub.size(), 3);
      const auto sum = sub.allreduce({static_cast<double>(comm.rank())},
                                     ReduceOp::kSum);
      EXPECT_DOUBLE_EQ(sum[0], 8.0);
    } else {
      EXPECT_TRUE(sub.is_null());
    }
  });
}

TEST(Vmp, SplitIsolatesSiblingTraffic) {
  Cluster::run(4, [](Communicator& comm) {
    Communicator sub = comm.split(comm.rank() / 2);
    // Each pair exchanges; tags are identical across groups — traffic must
    // not cross because the contexts differ.
    const int peer = 1 - sub.rank();
    const auto reply = sub.sendrecv(
        peer, 77, bytes_of({static_cast<std::uint8_t>(comm.rank())}));
    const int expected_world_rank = (comm.rank() / 2) * 2 + peer;
    EXPECT_EQ(reply.payload[0], expected_world_rank);
  });
}

TEST(Vmp, TypedHelpersRoundTrip) {
  struct Payload {
    int a;
    double b;
  };
  Cluster::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 2, Payload{5, 2.5});
    } else {
      const auto p = comm.recv_value<Payload>(0, 2);
      EXPECT_EQ(p.a, 5);
      EXPECT_DOUBLE_EQ(p.b, 2.5);
    }
  });
}

TEST(Vmp, RankExceptionPropagatesAndUnblocksPeers) {
  EXPECT_THROW(
      Cluster::run(3,
                   [](Communicator& comm) {
                     if (comm.rank() == 1)
                       throw std::runtime_error("rank 1 died");
                     // Peers block forever unless the poison wakes them.
                     (void)comm.recv(kAnySource, 12345);
                   }),
      std::runtime_error);
}

TEST(Vmp, ZeroRanksRejected) {
  EXPECT_THROW(Cluster::run(0, [](Communicator&) {}), std::invalid_argument);
}

TEST(Vmp, LargePayloadIntegrity) {
  Cluster::run(2, [](Communicator& comm) {
    constexpr std::size_t kSize = 1 << 20;
    if (comm.rank() == 0) {
      util::Bytes big(kSize);
      for (std::size_t i = 0; i < kSize; ++i)
        big[i] = static_cast<std::uint8_t>(i * 2654435761u >> 13);
      comm.send(1, 1, std::move(big));
    } else {
      const auto msg = comm.recv(0, 1);
      ASSERT_EQ(msg.payload.size(), kSize);
      for (std::size_t i = 0; i < kSize; i += 4097)
        EXPECT_EQ(msg.payload[i],
                  static_cast<std::uint8_t>(i * 2654435761u >> 13));
    }
  });
}

}  // namespace
}  // namespace tvviz
