// Tests for the §7.1 remote-viewing extensions: image-based view sets and
// the temporal preview planner (time-step skipping).
#include <gtest/gtest.h>

#include "codec/image_codec.hpp"
#include "core/session.hpp"
#include "field/generators.hpp"
#include "field/preview.hpp"
#include "render/ibr.hpp"

namespace tvviz {
namespace {

using field::TemporalSummary;
using render::Image;
using render::ViewSet;

field::VolumeF test_volume() {
  return field::generate(field::scaled(field::turbulent_jet_desc(), 4, 4), 2);
}

// ----------------------------------------------------------------- ibr ----

TEST(ViewSet, CaptureProducesRequestedViews) {
  const auto set = ViewSet::capture(test_volume(),
                                    render::TransferFunction::fire(), 8, 48);
  EXPECT_EQ(set.view_count(), 8);
  EXPECT_EQ(set.size(), 48);
  EXPECT_NEAR(set.azimuth_of(2), 2.0 * 6.283185307 / 8.0, 1e-6);
  EXPECT_THROW(
      ViewSet::capture(test_volume(), render::TransferFunction::fire(), 1, 32),
      std::invalid_argument);
}

TEST(ViewSet, ReconstructionAtKeyViewIsExact) {
  const auto set = ViewSet::capture(test_volume(),
                                    render::TransferFunction::fire(), 6, 48);
  for (int v = 0; v < 6; ++v) {
    const Image rec = set.reconstruct(set.azimuth_of(v));
    EXPECT_TRUE(std::isinf(render::psnr(set.view(v), rec))) << v;
  }
}

TEST(ViewSet, ReconstructionWrapsAround) {
  const auto set = ViewSet::capture(test_volume(),
                                    render::TransferFunction::fire(), 6, 48);
  // Just below 2*pi blends view 5 with view 0 and stays close to both.
  const Image rec = set.reconstruct(6.28);
  EXPECT_GT(render::psnr(set.view(0), rec), 20.0);
  // Negative azimuths are normalized.
  const Image neg = set.reconstruct(-6.283185307 / 6.0);
  EXPECT_GT(render::psnr(set.view(5), neg), 30.0);
}

TEST(ViewSet, OddViewCountBlendsAcrossTheWrapByAngle) {
  // Regression for the wrap segment with an odd view count: azimuths in
  // [azimuth_of(n-1), tau) must blend views n-1 and 0 weighted by angular
  // distance, exactly like an interior segment — no index-space shortcut.
  constexpr double kTau = 6.283185307179586;
  const int n = 5;  // odd: the wrap segment is not mirrored by any symmetry
  const auto set = ViewSet::capture(test_volume(),
                                    render::TransferFunction::fire(), n, 48);
  const double spacing = kTau / n;

  // Exactly on the last key view: lossless.
  EXPECT_TRUE(std::isinf(
      render::psnr(set.view(n - 1), set.reconstruct(set.azimuth_of(n - 1)))));

  // Halfway across the seam: the manual 50/50 blend of views n-1 and 0.
  const double mid = set.azimuth_of(n - 1) + spacing / 2.0;
  const Image rec = set.reconstruct(mid);
  const Image& a = set.view(n - 1);
  const Image& b = set.view(0);
  Image manual(48, 48);
  for (int y = 0; y < 48; ++y)
    for (int x = 0; x < 48; ++x) {
      const auto* pa = a.pixel(x, y);
      const auto* pb = b.pixel(x, y);
      manual.set(x, y,
                 static_cast<std::uint8_t>(0.5 * pa[0] + 0.5 * pb[0] + 0.5),
                 static_cast<std::uint8_t>(0.5 * pa[1] + 0.5 * pb[1] + 0.5),
                 static_cast<std::uint8_t>(0.5 * pa[2] + 0.5 * pb[2] + 0.5),
                 static_cast<std::uint8_t>(0.5 * pa[3] + 0.5 * pb[3] + 0.5));
    }
  EXPECT_GT(render::psnr(manual, rec), 50.0);

  // Approaching tau from below converges to view 0, not to a stale blend.
  const Image near_wrap = set.reconstruct(kTau - 1e-9);
  EXPECT_GT(render::psnr(set.view(0), near_wrap), 50.0);
}

TEST(ViewSet, MidpointReconstructionApproximatesTruth) {
  const field::VolumeF vol = test_volume();
  const auto tf = render::TransferFunction::fire();
  const auto set = ViewSet::capture(vol, tf, 16, 64);
  const double azimuth = set.azimuth_of(4) + 6.283185307 / 32.0;
  const Image rec = set.reconstruct(azimuth);
  render::RayCaster caster;
  const Image truth = caster.render_full(
      vol, render::Camera(64, 64, azimuth, set.elevation()), tf, true);
  EXPECT_GT(render::psnr(truth, rec), 22.0);
}

TEST(ViewSet, SerializeRoundTripLossless) {
  const auto codec = codec::make_image_codec("lzo");
  const auto set = ViewSet::capture(test_volume(),
                                    render::TransferFunction::fire(), 5, 40);
  const auto wire = set.serialize(*codec);
  const auto back = ViewSet::deserialize(wire, *codec);
  EXPECT_EQ(back.view_count(), 5);
  EXPECT_EQ(back.size(), 40);
  for (int v = 0; v < 5; ++v)
    EXPECT_TRUE(std::isinf(render::psnr(set.view(v), back.view(v))));
}

TEST(ViewSet, DeserializeRejectsCodecMismatch) {
  const auto lzo = codec::make_image_codec("lzo");
  const auto jpeg = codec::make_image_codec("jpeg");
  const auto set = ViewSet::capture(test_volume(),
                                    render::TransferFunction::fire(), 3, 32);
  const auto wire = set.serialize(*lzo);
  EXPECT_THROW(ViewSet::deserialize(wire, *jpeg), std::runtime_error);
}

TEST(ViewSet, CompressedSetCheaperThanRawViews) {
  const auto jpeg = codec::make_image_codec("jpeg+lzo", 75);
  const auto set = ViewSet::capture(test_volume(),
                                    render::TransferFunction::fire(), 8, 64);
  EXPECT_LT(set.wire_bytes(*jpeg), 8u * 64 * 64 * 3 / 10);
}

// --------------------------------------------------------------- preview ----

TEST(TemporalSummary, DeltasReflectEvolution) {
  const auto desc = field::scaled(field::turbulent_jet_desc(), 6, 12);
  const auto summary = TemporalSummary::analyze(desc, 512);
  EXPECT_EQ(summary.steps(), 12);
  EXPECT_DOUBLE_EQ(summary.delta(0), 0.0);
  for (int s = 1; s < 12; ++s) EXPECT_GT(summary.delta(s), 0.0) << s;
  EXPECT_GT(summary.total_change(), 0.0);
}

TEST(TemporalSummary, ThresholdZeroKeepsEverything) {
  const auto desc = field::scaled(field::turbulent_vortex_desc(), 8, 10);
  const auto summary = TemporalSummary::analyze(desc, 256);
  const auto all = summary.select_steps(0.0);
  EXPECT_EQ(static_cast<int>(all.size()), 10);
}

TEST(TemporalSummary, HigherThresholdKeepsFewerSteps) {
  const auto desc = field::scaled(field::turbulent_jet_desc(), 6, 16);
  const auto summary = TemporalSummary::analyze(desc, 512);
  const double unit = summary.total_change() / 16.0;
  const auto fine = summary.select_steps(unit);
  const auto coarse = summary.select_steps(4.0 * unit);
  EXPECT_LT(coarse.size(), fine.size());
  // Both keep the endpoints and are strictly increasing.
  for (const auto& sel : {fine, coarse}) {
    EXPECT_EQ(sel.front(), 0);
    EXPECT_EQ(sel.back(), 15);
    for (std::size_t i = 1; i < sel.size(); ++i)
      EXPECT_GT(sel[i], sel[i - 1]);
  }
}

TEST(TemporalSummary, BudgetSelectionRespectsCount) {
  const auto desc = field::scaled(field::turbulent_jet_desc(), 6, 20);
  const auto summary = TemporalSummary::analyze(desc, 256);
  const auto sel = summary.select_budget(6);
  EXPECT_LE(sel.size(), 6u);
  EXPECT_GE(sel.size(), 2u);
  EXPECT_EQ(sel.front(), 0);
  EXPECT_EQ(sel.back(), 19);
  EXPECT_THROW(summary.select_budget(1), std::invalid_argument);
}

TEST(TemporalSummary, DeterministicForSeed) {
  const auto desc = field::scaled(field::turbulent_jet_desc(), 8, 6);
  const auto a = TemporalSummary::analyze(desc, 128, 77);
  const auto b = TemporalSummary::analyze(desc, 128, 77);
  for (int s = 0; s < 6; ++s) EXPECT_EQ(a.delta(s), b.delta(s));
}

// ---------------------------------------------------- preview in session ----

TEST(PreviewSession, RendersOnlySelectedSteps) {
  core::SessionConfig cfg;
  cfg.dataset = field::scaled(field::turbulent_jet_desc(), 6, 10);
  cfg.processors = 4;
  cfg.groups = 2;
  cfg.image_width = cfg.image_height = 32;
  cfg.codec = "raw";
  cfg.keep_frames = true;
  cfg.step_map = {0, 3, 7, 9};
  const auto result = core::run_session(cfg);
  EXPECT_EQ(result.frames.size(), 4u);
  EXPECT_EQ(result.displayed.size(), 4u);

  // Preview frame k must equal a full-session render of dataset step
  // step_map[k].
  core::SessionConfig full = cfg;
  full.step_map.clear();
  const auto everything = core::run_session(full);
  ASSERT_EQ(everything.displayed.size(), 10u);
  for (std::size_t k = 0; k < cfg.step_map.size(); ++k)
    EXPECT_TRUE(std::isinf(render::psnr(
        result.displayed[k],
        everything.displayed[static_cast<std::size_t>(cfg.step_map[k])])));
}

TEST(PreviewSession, RejectsOutOfRangeMap) {
  core::SessionConfig cfg;
  cfg.dataset = field::scaled(field::turbulent_jet_desc(), 8, 4);
  cfg.step_map = {0, 4};  // 4 is out of range
  EXPECT_THROW(core::run_session(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace tvviz
