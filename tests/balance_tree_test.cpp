// Tests for binary-tree compositing, the scatter/allgather collectives,
// weighted slab decomposition and load-balanced sessions.
#include <gtest/gtest.h>

#include "compositing/binary_swap.hpp"
#include "compositing/over.hpp"
#include "core/session.hpp"
#include "field/decompose.hpp"
#include "field/preview.hpp"
#include "render/transfer.hpp"
#include "util/rng.hpp"
#include "vmp/communicator.hpp"

namespace tvviz {
namespace {

using field::Box;
using field::Dims;
using render::Image;
using render::PartialImage;
using render::Rgba;

// ------------------------------------------------------- tree composite ----

PartialImage monotone_partial(int rank, int w, int h) {
  util::Rng rng(static_cast<std::uint64_t>(rank) * 31 + 5);
  PartialImage p(0, 0, w, h);
  p.set_depth(rank);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      const double a = rng.uniform(0.0, 0.7);
      p.at(x, y) = Rgba{a * rng.uniform(), a * rng.uniform(), a, a};
    }
  return p;
}

class TreeComposite : public ::testing::TestWithParam<int> {};

TEST_P(TreeComposite, MatchesReference) {
  const int ranks = GetParam();
  constexpr int kW = 20, kH = 16;
  std::vector<PartialImage> partials;
  for (int r = 0; r < ranks; ++r) partials.push_back(monotone_partial(r, kW, kH));
  const Image expected = compositing::composite_reference(partials, kW, kH);

  Image actual;
  vmp::Cluster::run(ranks, [&](vmp::Communicator& comm) {
    const Image img = compositing::tree_composite(
        comm, partials[static_cast<std::size_t>(comm.rank())], kW, kH);
    if (comm.rank() == 0) actual = img;
  });
  ASSERT_EQ(actual.width(), kW);
  const auto pa = expected.bytes();
  const auto pb = actual.bytes();
  for (std::size_t i = 0; i < pa.size(); ++i)
    ASSERT_LE(std::abs(int(pa[i]) - int(pb[i])), 1) << "ranks=" << ranks;
}

INSTANTIATE_TEST_SUITE_P(RankCounts, TreeComposite,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8));

// ---------------------------------------------------- scatter/allgather ----

TEST(VmpScatter, DistributesPerRankPayloads) {
  vmp::Cluster::run(5, [](vmp::Communicator& comm) {
    std::vector<util::Bytes> payloads;
    if (comm.rank() == 2) {  // non-zero root
      for (int r = 0; r < 5; ++r)
        payloads.push_back(util::Bytes{static_cast<std::uint8_t>(r * 7)});
    }
    const auto mine = comm.scatter(2, std::move(payloads));
    ASSERT_EQ(mine.size(), 1u);
    EXPECT_EQ(mine[0], comm.rank() * 7);
  });
}

TEST(VmpScatter, WrongCountThrows) {
  EXPECT_THROW(vmp::Cluster::run(3,
                                 [](vmp::Communicator& comm) {
                                   std::vector<util::Bytes> p(2);  // != 3
                                   (void)comm.scatter(0, std::move(p));
                                 }),
               std::invalid_argument);
}

TEST(VmpAllgather, EveryRankSeesEveryPayload) {
  vmp::Cluster::run(6, [](vmp::Communicator& comm) {
    util::Bytes mine(static_cast<std::size_t>(comm.rank() + 1),
                     static_cast<std::uint8_t>(comm.rank()));
    const auto all = comm.allgather(std::move(mine));
    ASSERT_EQ(all.size(), 6u);
    for (int r = 0; r < 6; ++r) {
      ASSERT_EQ(all[static_cast<std::size_t>(r)].size(),
                static_cast<std::size_t>(r + 1));
      EXPECT_EQ(all[static_cast<std::size_t>(r)][0], r);
    }
  });
}

// ------------------------------------------------ weighted decomposition ----

TEST(WeightedSlabs, EqualWeightsMatchEvenSplit) {
  const Dims dims{8, 8, 12};
  std::vector<double> weights(12, 1.0);
  const auto even = field::decompose_slabs(dims, 4, 2);
  const auto weighted = field::decompose_slabs_weighted(dims, 4, 2, weights);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(weighted[static_cast<std::size_t>(i)].lo[2],
              even[static_cast<std::size_t>(i)].lo[2]);
    EXPECT_EQ(weighted[static_cast<std::size_t>(i)].hi[2],
              even[static_cast<std::size_t>(i)].hi[2]);
  }
}

TEST(WeightedSlabs, HeavyRegionGetsThinnerSlabs) {
  const Dims dims{8, 8, 20};
  std::vector<double> weights(20, 0.0);
  for (int k = 0; k < 5; ++k) weights[static_cast<std::size_t>(k)] = 10.0;
  const auto boxes = field::decompose_slabs_weighted(dims, 4, 2, weights);
  // The heavy first quarter carries nearly all the work: the first slabs
  // must be thin and the last slab must absorb the empty tail.
  EXPECT_LE(boxes[0].hi[2] - boxes[0].lo[2], 3);
  EXPECT_GE(boxes[3].hi[2] - boxes[3].lo[2], 10);
  // Still a tiling.
  EXPECT_EQ(boxes[0].lo[2], 0);
  EXPECT_EQ(boxes[3].hi[2], 20);
  for (int i = 1; i < 4; ++i)
    EXPECT_EQ(boxes[static_cast<std::size_t>(i)].lo[2],
              boxes[static_cast<std::size_t>(i - 1)].hi[2]);
}

TEST(WeightedSlabs, EverySlabKeepsAtLeastOnePlane) {
  const Dims dims{4, 4, 6};
  std::vector<double> weights = {100, 0, 0, 0, 0, 0};
  const auto boxes = field::decompose_slabs_weighted(dims, 6, 2, weights);
  for (const auto& b : boxes) EXPECT_GE(b.hi[2] - b.lo[2], 1);
}

TEST(WeightedSlabs, RejectsBadArguments) {
  const Dims dims{4, 4, 8};
  std::vector<double> weights(8, 1.0);
  EXPECT_THROW(field::decompose_slabs_weighted(dims, 4, 5, weights),
               std::invalid_argument);
  EXPECT_THROW(field::decompose_slabs_weighted(dims, 9, 2, weights),
               std::invalid_argument);
  std::vector<double> wrong(5, 1.0);
  EXPECT_THROW(field::decompose_slabs_weighted(dims, 2, 2, wrong),
               std::invalid_argument);
}

TEST(PlaneWeights, TracksVisibleWork) {
  // The jet is empty near the nozzle floor (y small) but along z the plume
  // sits mid-domain: probe against the fire threshold and check the
  // mid-planes outweigh the border planes.
  const auto desc = field::scaled(field::turbulent_jet_desc(), 4, 4);
  const auto tf = render::TransferFunction::fire();
  const auto weights = field::estimate_plane_weights(
      desc, 2, /*axis=*/0, [&](float v) { return tf.sample(v).alpha > 0.0; },
      64);
  ASSERT_EQ(static_cast<int>(weights.size()), desc.dims.nx);
  double border = weights.front() + weights.back();
  double middle = weights[weights.size() / 2] + weights[weights.size() / 2 + 1];
  EXPECT_GT(middle, border);
  // Deterministic across calls.
  const auto again = field::estimate_plane_weights(
      desc, 2, 0, [&](float v) { return tf.sample(v).alpha > 0.0; }, 64);
  EXPECT_EQ(weights, again);
}

// --------------------------------------------------- balanced session ----

TEST(LoadBalancedSession, SameImagesAsEvenSplit) {
  core::SessionConfig cfg;
  cfg.dataset = field::scaled(field::turbulent_jet_desc(), 5, 3);
  cfg.processors = 4;
  cfg.groups = 1;
  cfg.image_width = cfg.image_height = 40;
  cfg.codec = "raw";
  cfg.keep_frames = true;
  // Exact-tiling configuration (see RayCastTiling): unshaded, no early out.
  cfg.render_options.shading = false;
  cfg.render_options.early_termination = 2.0;

  const auto even = core::run_session(cfg);
  cfg.load_balanced = true;
  const auto balanced = core::run_session(cfg);
  ASSERT_EQ(even.displayed.size(), balanced.displayed.size());
  for (std::size_t i = 0; i < even.displayed.size(); ++i)
    EXPECT_GT(render::psnr(even.displayed[i], balanced.displayed[i]), 45.0);
}

}  // namespace
}  // namespace tvviz
