// Tests for the core pipeline layer: partitioning, metrics, cost models,
// the discrete-event pipeline simulator (Figure 6/7 shapes), and the
// analytic performance model cross-check.
#include <gtest/gtest.h>

#include "core/costs.hpp"
#include "core/metrics.hpp"
#include "core/partition.hpp"
#include "core/perfmodel.hpp"
#include "core/pipesim.hpp"

namespace tvviz {
namespace {

using core::CodecProfile;
using core::FrameRecord;
using core::Metrics;
using core::OutputMode;
using core::Partition;
using core::PipelineConfig;
using core::StageCosts;

// ----------------------------------------------------------- partition ----

class PartitionParam
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(PartitionParam, GroupsCoverAllRanksOnce) {
  const auto [p, l] = GetParam();
  const Partition part(p, l);
  EXPECT_EQ(part.groups(), l);
  std::vector<int> seen(static_cast<std::size_t>(p), 0);
  for (int g = 0; g < l; ++g)
    for (int rank : part.group_members(g)) {
      ++seen[static_cast<std::size_t>(rank)];
      EXPECT_EQ(part.group_of_rank(rank), g);
    }
  for (int count : seen) EXPECT_EQ(count, 1);
  // Balanced within one.
  int min_size = p, max_size = 0;
  for (int g = 0; g < l; ++g) {
    min_size = std::min(min_size, part.group_size(g));
    max_size = std::max(max_size, part.group_size(g));
  }
  EXPECT_LE(max_size - min_size, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionParam,
    ::testing::Values(std::pair<int, int>{1, 1}, std::pair<int, int>{4, 1},
                      std::pair<int, int>{4, 2}, std::pair<int, int>{4, 4},
                      std::pair<int, int>{7, 3}, std::pair<int, int>{16, 4},
                      std::pair<int, int>{32, 5},
                      std::pair<int, int>{64, 64}));

TEST(Partition, StepAssignmentRoundRobin) {
  const Partition part(8, 4);
  EXPECT_EQ(part.group_for_step(0), 0);
  EXPECT_EQ(part.group_for_step(5), 1);
  const auto steps = part.steps_for_group(1, 10);
  EXPECT_EQ(steps, (std::vector<int>{1, 5, 9}));
  EXPECT_EQ(part.step_count_for_group(1, 10), 3);
  EXPECT_EQ(part.step_count_for_group(3, 3), 0);
}

TEST(Partition, InvalidShapesThrow) {
  EXPECT_THROW(Partition(0, 1), std::invalid_argument);
  EXPECT_THROW(Partition(4, 0), std::invalid_argument);
  EXPECT_THROW(Partition(4, 5), std::invalid_argument);
}

// -------------------------------------------------------------- metrics ----

TEST(Metrics, ComputesThreeMetricsOfSection3) {
  std::vector<FrameRecord> records;
  for (int i = 0; i < 5; ++i) {
    FrameRecord r;
    r.step = i;
    r.displayed = 2.0 + i * 1.5;
    records.push_back(r);
  }
  const Metrics m = Metrics::from_records(records);
  EXPECT_DOUBLE_EQ(m.startup_latency, 2.0);
  EXPECT_DOUBLE_EQ(m.overall_time, 8.0);
  EXPECT_DOUBLE_EQ(m.inter_frame_delay, 1.5);
  EXPECT_NEAR(m.frames_per_second(), 1.0 / 1.5, 1e-12);
}

TEST(Metrics, UnsortedInputHandled) {
  std::vector<FrameRecord> records(3);
  records[0].displayed = 9.0;
  records[1].displayed = 3.0;
  records[2].displayed = 6.0;
  const Metrics m = Metrics::from_records(records);
  EXPECT_DOUBLE_EQ(m.startup_latency, 3.0);
  EXPECT_DOUBLE_EQ(m.overall_time, 9.0);
  EXPECT_DOUBLE_EQ(m.inter_frame_delay, 3.0);
}

TEST(Metrics, EmptyThrows) {
  EXPECT_THROW(Metrics::from_records({}), std::invalid_argument);
}

TEST(Metrics, NonzeroTimeOriginRebased) {
  // Regression: records stamped with absolute (wall-clock-like) times used
  // to report the raw `displayed` values as startup latency / overall time.
  // Both are durations and must be measured from the earliest input_start.
  std::vector<FrameRecord> records;
  for (int i = 0; i < 4; ++i) {
    FrameRecord r;
    r.step = i;
    r.input_start = 1000.0 + i * 1.5;
    r.displayed = 1002.0 + i * 1.5;
    records.push_back(r);
  }
  const Metrics m = Metrics::from_records(records);
  EXPECT_DOUBLE_EQ(m.startup_latency, 2.0);
  EXPECT_DOUBLE_EQ(m.overall_time, 6.5);
  EXPECT_DOUBLE_EQ(m.inter_frame_delay, 1.5);
}

TEST(Metrics, NegativeInputStartIgnoredForOrigin) {
  // input_start < 0 means "not recorded" and must not drag the time origin
  // below the real one.
  std::vector<FrameRecord> records(2);
  records[0].input_start = -1.0;
  records[0].displayed = 12.0;
  records[1].input_start = 10.0;
  records[1].displayed = 13.0;
  const Metrics m = Metrics::from_records(records);
  EXPECT_DOUBLE_EQ(m.startup_latency, 2.0);
  EXPECT_DOUBLE_EQ(m.overall_time, 3.0);
}

// ---------------------------------------------------------------- costs ----

TEST(StageCosts, RenderScalesWithGroupSize) {
  StageCosts c = StageCosts::rwcp_paper();
  c.node_memory_bytes = 1e12;  // isolate the parallel-overhead term
  const std::size_t voxels = 129ull * 129 * 104;
  const std::size_t pixels = 256 * 256;
  const std::size_t bytes = voxels * 4;
  const double t1 = c.render_seconds_group(voxels, pixels, 1, bytes);
  const double t8 = c.render_seconds_group(voxels, pixels, 8, bytes);
  const double t32 = c.render_seconds_group(voxels, pixels, 32, bytes);
  EXPECT_GT(t1, t8);
  EXPECT_GT(t8, t32);
  // Sub-linear speedup (parallelization overhead), absent memory effects.
  EXPECT_GT(t8 * 8, t1);
  EXPECT_GT(t32 * 32, t8 * 8);
}

TEST(StageCosts, MemoryPressurePenalizesTinyGroups) {
  StageCosts c = StageCosts::rwcp_paper();
  const std::size_t voxels = 129ull * 129 * 104;
  const std::size_t bytes = voxels * 4;  // ~6.9 MB -> 34 MB working set
  const double with_pressure =
      c.render_seconds_group(voxels, 65536, 1, bytes);
  c.node_memory_bytes = 1e9;  // plenty of memory: no penalty
  const double without = c.render_seconds_group(voxels, 65536, 1, bytes);
  EXPECT_GT(with_pressure, 1.5 * without);
}

TEST(StageCosts, InputThrashGrowsWithStreams) {
  const StageCosts c = StageCosts::rwcp_paper();
  const double t1 = c.input_seconds(1 << 20, 1);
  const double t8 = c.input_seconds(1 << 20, 8);
  EXPECT_GT(t8, t1);
}

TEST(StageCosts, CompositeGrowsWithGroupSize) {
  const StageCosts c = StageCosts::o2k_paper();
  EXPECT_DOUBLE_EQ(c.composite_seconds(65536, 1), 0.0);
  EXPECT_GT(c.composite_seconds(65536, 16), c.composite_seconds(65536, 4));
}

TEST(StageCosts, RenderBaseMatchesPaperBand) {
  // §6: "about 10 to 20 seconds ... 256x256 pixels using a single processor"
  for (const auto& c : {StageCosts::o2k_paper(), StageCosts::rwcp_paper()}) {
    const double t =
        c.render_seconds_single(129ull * 129 * 104, 256 * 256);
    EXPECT_GE(t, 10.0);
    EXPECT_LE(t, 20.0);
  }
}

TEST(CodecProfile, PaperProfilesMatchTable1Regime) {
  // Spot-check the fitted size laws against Table 1 within a factor ~1.6.
  const auto check = [](const char* name, std::size_t pixels,
                        double expected) {
    const double bytes = CodecProfile::paper(name).compressed_bytes(pixels);
    EXPECT_GT(bytes, expected / 1.6) << name << "@" << pixels;
    EXPECT_LT(bytes, expected * 1.6) << name << "@" << pixels;
  };
  check("lzo", 256 * 256, 63386);
  check("bzip", 256 * 256, 44867);
  check("jpeg", 256 * 256, 3310);
  check("jpeg+lzo", 256 * 256, 2667);
  check("jpeg+lzo", 1024 * 1024, 18484);
  check("jpeg+bzip", 128 * 128, 1642);
}

TEST(CodecProfile, CompressionCostMatchesSection6Quotes) {
  // §6: JPEG+LZO compression ~6 ms at 128^2 and ~500 ms at 1024^2;
  // decompression 12 to 600 ms. Accept a 3x band.
  const auto p = CodecProfile::paper("jpeg+lzo");
  EXPECT_NEAR(p.compress_seconds(128 * 128), 0.006, 0.012);
  EXPECT_NEAR(p.compress_seconds(1024 * 1024), 0.5, 0.35);
  EXPECT_NEAR(p.decompress_seconds(1024 * 1024), 0.6, 0.4);
}

TEST(CodecProfile, UnknownThrows) {
  EXPECT_THROW(CodecProfile::paper("gif"), std::invalid_argument);
}

// --------------------------------------------------------------- pipesim ----

PipelineConfig rwcp_config(int p, int l) {
  PipelineConfig cfg;
  cfg.processors = p;
  cfg.groups = l;
  cfg.dataset = field::turbulent_jet_desc();
  cfg.steps_limit = 128;  // "first 128 time steps" (Figure 6)
  cfg.image_width = cfg.image_height = 256;
  cfg.costs = StageCosts::rwcp_paper();
  cfg.codec = CodecProfile::paper("jpeg+lzo");
  return cfg;
}

TEST(PipeSim, AllFramesDelivered) {
  const auto result = core::simulate_pipeline(rwcp_config(8, 2));
  EXPECT_EQ(result.frames.size(), 128u);
  std::vector<bool> seen(128, false);
  for (const auto& f : result.frames) {
    EXPECT_GE(f.step, 0);
    EXPECT_LT(f.step, 128);
    EXPECT_FALSE(seen[static_cast<std::size_t>(f.step)]);
    seen[static_cast<std::size_t>(f.step)] = true;
    EXPECT_LE(f.input_done, f.render_done);
    EXPECT_LE(f.render_done, f.composite_done);
    EXPECT_LE(f.composite_done, f.sent);
    EXPECT_LE(f.sent, f.displayed);
  }
}

TEST(PipeSim, Figure6UShapeInteriorOptimum) {
  // Figure 6: overall execution time vs L is U-shaped with an interior
  // optimum for each processor count.
  for (const int p : {16, 32, 64}) {
    double best_t = 1e300;
    int best_l = -1;
    double t_first = 0, t_last = 0;
    for (int l = 1; l <= p; l *= 2) {
      const auto result = core::simulate_pipeline(rwcp_config(p, l));
      const double t = result.metrics.overall_time;
      if (l == 1) t_first = t;
      if (l == p) t_last = t;
      if (t < best_t) {
        best_t = t;
        best_l = l;
      }
    }
    EXPECT_GT(best_l, 1) << "P=" << p;
    EXPECT_LT(best_l, p) << "P=" << p;
    EXPECT_LT(best_t, t_first) << "P=" << p;
    EXPECT_LT(best_t, t_last) << "P=" << p;
  }
}

TEST(PipeSim, Figure7StartupLatencyMonotoneInL) {
  // §6: "start-up latency monotonically increases with the number of
  // partitions since fewer processors render a single volume".
  double prev = 0.0;
  for (int l = 1; l <= 32; l *= 2) {
    const auto result = core::simulate_pipeline(rwcp_config(32, l));
    EXPECT_GT(result.metrics.startup_latency, prev) << "L=" << l;
    prev = result.metrics.startup_latency;
  }
}

TEST(PipeSim, Figure7InterFrameDelayTracksOverallTime) {
  // Fig. 7: inter-frame delay exhibits a curve similar to overall time.
  const auto at = [&](int l) {
    return core::simulate_pipeline(rwcp_config(32, l));
  };
  const auto r1 = at(1), r4 = at(4), r32 = at(32);
  EXPECT_LT(r4.metrics.inter_frame_delay, r1.metrics.inter_frame_delay);
  EXPECT_LE(r4.metrics.inter_frame_delay, r32.metrics.inter_frame_delay * 1.3);
}

TEST(PipeSim, XWindowSlowerThanDaemonForLargeImages) {
  // The transport gap shows once rendering is not the bottleneck (the
  // paper's Table 2 rates are display-path rates): with a fast renderer,
  // X-Window inter-frame delay must trail the compressed daemon's badly.
  PipelineConfig cfg = rwcp_config(16, 4);
  cfg.steps_limit = 16;
  cfg.image_width = cfg.image_height = 512;
  cfg.costs.render_base_seconds = 0.5;
  cfg.output = OutputMode::kDaemonCompressed;
  const auto daemon = core::simulate_pipeline(cfg);
  cfg.output = OutputMode::kXWindow;
  const auto x = core::simulate_pipeline(cfg);
  EXPECT_GT(x.metrics.inter_frame_delay,
            2.0 * daemon.metrics.inter_frame_delay);
  // Display time also dwarfs the daemon's in the per-frame breakdown
  // (Figure 9 top vs bottom).
  EXPECT_GT(x.breakdown.transfer,
            4.0 * (daemon.breakdown.transfer + daemon.breakdown.client));
}

TEST(PipeSim, ParallelCompressionReducesCompressStageTime) {
  PipelineConfig cfg = rwcp_config(16, 2);
  cfg.steps_limit = 8;
  const auto serial = core::simulate_pipeline(cfg);
  cfg.parallel_compression = true;
  const auto parallel = core::simulate_pipeline(cfg);
  EXPECT_LT(parallel.breakdown.compress, serial.breakdown.compress);
}

TEST(PipeSim, BreakdownAndUtilizationPopulated) {
  const auto result = core::simulate_pipeline(rwcp_config(8, 4));
  EXPECT_GT(result.breakdown.input, 0.0);
  EXPECT_GT(result.breakdown.render, 0.0);
  EXPECT_GT(result.breakdown.transfer, 0.0);
  EXPECT_GT(result.breakdown.client, 0.0);
  EXPECT_GT(result.disk_utilization, 0.0);
  EXPECT_LE(result.disk_utilization, 1.0);
  EXPECT_GT(result.compressed_bytes_per_frame, 100.0);
}

TEST(PipeSim, GroupFramesDeliveredInStepOrder) {
  const auto result = core::simulate_pipeline(rwcp_config(8, 4));
  std::map<int, double> last_display_per_group;
  std::map<int, int> last_step_per_group;
  std::vector<core::FrameRecord> frames = result.frames;
  std::sort(frames.begin(), frames.end(),
            [](const auto& a, const auto& b) { return a.step < b.step; });
  for (const auto& f : frames) {
    if (last_step_per_group.count(f.group)) {
      EXPECT_GT(f.step, last_step_per_group[f.group]);
      EXPECT_GE(f.sent, last_display_per_group[f.group]);
    }
    last_step_per_group[f.group] = f.step;
    last_display_per_group[f.group] = f.sent;
  }
}

// ------------------------------------------------------------ perfmodel ----

TEST(PerfModel, TracksSimulatorWithinTolerance) {
  for (const auto& [p, l] : {std::pair{16, 4}, {32, 4}, {32, 8}, {64, 2}}) {
    const PipelineConfig cfg = rwcp_config(p, l);
    const auto sim = core::simulate_pipeline(cfg);
    const auto model = core::predict_pipeline(cfg);
    EXPECT_NEAR(model.overall_time, sim.metrics.overall_time,
                0.35 * sim.metrics.overall_time)
        << "P=" << p << " L=" << l;
    EXPECT_NEAR(model.startup_latency, sim.metrics.startup_latency,
                0.5 * sim.metrics.startup_latency + 0.5)
        << "P=" << p << " L=" << l;
  }
}

TEST(PerfModel, OptimalPartitionsInterior) {
  for (const int p : {16, 32, 64}) {
    PipelineConfig cfg = rwcp_config(p, 1);
    const int best = core::optimal_partitions(cfg);
    EXPECT_GT(best, 1) << p;
    EXPECT_LT(best, p) << p;
  }
}

TEST(PerfModel, InputBoundFlagSetWhenInputDominates) {
  PipelineConfig cfg = rwcp_config(64, 32);
  const auto pred = core::predict_pipeline(cfg);
  EXPECT_TRUE(pred.input_bound);
}

}  // namespace
}  // namespace tvviz
