// Property sweep over the pipeline simulator: invariants that must hold
// for ANY configuration — frame conservation, causal stage ordering,
// bounded utilizations, and monotone responses to resources.
#include <gtest/gtest.h>

#include "core/perfmodel.hpp"
#include "core/pipesim.hpp"
#include "util/rng.hpp"

namespace tvviz {
namespace {

using core::OutputMode;
using core::PipelineConfig;

PipelineConfig random_config(util::Rng& rng) {
  PipelineConfig cfg;
  cfg.processors = static_cast<int>(1 + rng.below(48));
  cfg.groups = static_cast<int>(1 + rng.below(
      static_cast<std::uint64_t>(cfg.processors)));
  const int kind = static_cast<int>(rng.below(3));
  cfg.dataset = kind == 0   ? field::turbulent_jet_desc()
                : kind == 1 ? field::turbulent_vortex_desc()
                            : field::scaled(field::shock_mixing_desc(), 2, 64);
  cfg.steps_limit = static_cast<int>(4 + rng.below(48));
  const int sizes[] = {128, 256, 512};
  cfg.image_width = cfg.image_height = sizes[rng.below(3)];
  cfg.output = rng.below(2) ? OutputMode::kXWindow
                            : OutputMode::kDaemonCompressed;
  cfg.parallel_compression = rng.below(2) != 0;
  cfg.prefetch_depth = static_cast<int>(rng.below(3));
  cfg.io_servers = static_cast<int>(1 + rng.below(4));
  cfg.costs = rng.below(2) ? core::StageCosts::rwcp_paper()
                           : core::StageCosts::o2k_paper();
  return cfg;
}

class PipelineProperty : public ::testing::TestWithParam<int> {};

TEST_P(PipelineProperty, InvariantsHoldForRandomConfig) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  const PipelineConfig cfg = random_config(rng);
  const auto result = core::simulate_pipeline(cfg);

  // Conservation: exactly one frame per requested step, no duplicates.
  ASSERT_EQ(result.frames.size(), static_cast<std::size_t>(cfg.steps()));
  std::vector<bool> seen(static_cast<std::size_t>(cfg.steps()), false);
  for (const auto& f : result.frames) {
    ASSERT_GE(f.step, 0);
    ASSERT_LT(f.step, cfg.steps());
    EXPECT_FALSE(seen[static_cast<std::size_t>(f.step)]);
    seen[static_cast<std::size_t>(f.step)] = true;

    // Causality along the pipeline.
    EXPECT_LE(f.input_start, f.input_done);
    EXPECT_LE(f.input_done, f.render_done);
    EXPECT_LE(f.render_done, f.composite_done);
    EXPECT_LE(f.composite_done, f.sent);
    EXPECT_LE(f.sent, f.displayed);
    EXPECT_EQ(f.group, f.step % cfg.groups);
  }

  // Metric sanity.
  EXPECT_GT(result.metrics.startup_latency, 0.0);
  EXPECT_LE(result.metrics.startup_latency, result.metrics.overall_time);
  EXPECT_GE(result.metrics.inter_frame_delay, 0.0);
  EXPECT_GE(result.disk_utilization, 0.0);
  EXPECT_LE(result.disk_utilization, 1.0 + 1e-9);
  EXPECT_GE(result.wan_utilization, 0.0);
  EXPECT_LE(result.wan_utilization, 1.0 + 1e-9);
  EXPECT_GT(result.breakdown.render, 0.0);

  // The analytic model shares the simulator's cost terms but ignores
  // queueing/stagger effects; on arbitrary configurations it must still
  // land within the same order of magnitude (the calibrated operating
  // points are held to +/-35% in core_test).
  const auto model = core::predict_pipeline(cfg);
  EXPECT_GT(model.overall_time, 0.25 * result.metrics.overall_time);
  EXPECT_LT(model.overall_time, 4.0 * result.metrics.overall_time);
}

TEST_P(PipelineProperty, PrefetchDepthIsAStableKnob) {
  // Deeper prefetch usually helps but CAN hurt: with a shared FIFO disk a
  // greedy group's queued reads delay its siblings' first volumes. The
  // property that must hold is stability — same frames delivered, overall
  // time in the same regime — not strict monotonicity.
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 11);
  PipelineConfig cfg = random_config(rng);
  cfg.prefetch_depth = 0;
  const auto r0 = core::simulate_pipeline(cfg);
  cfg.prefetch_depth = 2;
  const auto r2 = core::simulate_pipeline(cfg);
  EXPECT_EQ(r0.frames.size(), r2.frames.size());
  EXPECT_GT(r2.metrics.overall_time, 0.5 * r0.metrics.overall_time);
  EXPECT_LT(r2.metrics.overall_time, 1.5 * r0.metrics.overall_time);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty, ::testing::Range(0, 24));

}  // namespace
}  // namespace tvviz
