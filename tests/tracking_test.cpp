// Run-time tracking (§2.1): the session waits for steps a concurrent
// producer is still committing, and atomic store writes guarantee readers
// never observe partial files.
#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "core/session.hpp"
#include "field/store.hpp"
#include "render/image.hpp"

namespace tvviz {
namespace {

class TrackingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tvviz_tracking_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(TrackingTest, SessionTracksLiveProducer) {
  core::SessionConfig cfg;
  cfg.dataset = field::scaled(field::turbulent_jet_desc(), 8, 5);
  cfg.processors = 2;
  cfg.groups = 1;
  cfg.image_width = cfg.image_height = 32;
  cfg.codec = "raw";
  cfg.keep_frames = true;
  cfg.store_dir = dir_;
  cfg.wait_for_store = true;

  field::VolumeStore store(dir_);
  std::thread producer([&] {
    for (int s = 0; s < cfg.dataset.steps; ++s) {
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
      store.write(s, field::generate(cfg.dataset, s));
    }
  });
  const auto tracked = core::run_session(cfg);
  producer.join();
  ASSERT_EQ(tracked.displayed.size(), 5u);

  // Same frames as a post-processing run over the completed store.
  core::SessionConfig post = cfg;
  post.wait_for_store = false;
  const auto offline = core::run_session(post);
  for (std::size_t i = 0; i < tracked.displayed.size(); ++i)
    EXPECT_TRUE(std::isinf(
        render::psnr(tracked.displayed[i], offline.displayed[i])));

  // Tracking could not have finished before the producer's last commit.
  EXPECT_GT(tracked.metrics.overall_time, 5 * 0.015);
}

TEST_F(TrackingTest, TimesOutWhenProducerStalls) {
  core::SessionConfig cfg;
  cfg.dataset = field::scaled(field::turbulent_jet_desc(), 8, 3);
  cfg.processors = 2;
  cfg.groups = 1;
  cfg.image_width = cfg.image_height = 16;
  cfg.store_dir = dir_;
  cfg.wait_for_store = true;
  cfg.input_wait_timeout_s = 0.1;

  field::VolumeStore store(dir_);
  store.write(0, field::generate(cfg.dataset, 0));  // only the first step

  EXPECT_THROW(core::run_session(cfg), std::runtime_error);
}

TEST_F(TrackingTest, WithoutWaitMissingStepFailsFast) {
  core::SessionConfig cfg;
  cfg.dataset = field::scaled(field::turbulent_jet_desc(), 8, 2);
  cfg.processors = 2;
  cfg.groups = 1;
  cfg.image_width = cfg.image_height = 16;
  cfg.store_dir = dir_;  // nothing materialized
  EXPECT_THROW(core::run_session(cfg), std::runtime_error);
}

}  // namespace
}  // namespace tvviz
