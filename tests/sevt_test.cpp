// Tests for the discrete-event simulation core: clock semantics, ordering,
// and FIFO resource queueing.
#include <gtest/gtest.h>

#include <vector>

#include "sevt/resource.hpp"
#include "sevt/simulator.hpp"

namespace tvviz {
namespace {

using sevt::Resource;
using sevt::Simulator;

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(3.0, [&] { order.push_back(3); });
  sim.at(1.0, [&] { order.push_back(1); });
  sim.at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulator, EqualTimesAreStable) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.at(1.0, [&, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, HandlersCanScheduleMoreEvents) {
  Simulator sim;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) sim.after(1.0, step);
  };
  sim.after(1.0, step);
  sim.run();
  EXPECT_EQ(chain, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, PastSchedulingThrows) {
  Simulator sim;
  sim.at(2.0, [&] {
    EXPECT_THROW(sim.at(1.0, [] {}), std::invalid_argument);
  });
  sim.run();
}

TEST(Simulator, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(5.0, [&] { ++fired; });
  sim.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_FALSE(sim.idle());
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Resource, SingleServerSerializesFifo) {
  Simulator sim;
  Resource res(sim, 1, "disk");
  std::vector<double> completions;
  for (int i = 0; i < 3; ++i)
    res.use(2.0, [&] { completions.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_DOUBLE_EQ(completions[0], 2.0);
  EXPECT_DOUBLE_EQ(completions[1], 4.0);
  EXPECT_DOUBLE_EQ(completions[2], 6.0);
  EXPECT_EQ(res.jobs_served(), 3u);
  EXPECT_DOUBLE_EQ(res.total_busy_time(), 6.0);
  EXPECT_DOUBLE_EQ(res.utilization(6.0), 1.0);
}

TEST(Resource, MultiServerRunsConcurrently) {
  Simulator sim;
  Resource res(sim, 2, "cpu");
  std::vector<double> completions;
  for (int i = 0; i < 4; ++i)
    res.use(3.0, [&] { completions.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(completions.size(), 4u);
  EXPECT_DOUBLE_EQ(completions[0], 3.0);
  EXPECT_DOUBLE_EQ(completions[1], 3.0);
  EXPECT_DOUBLE_EQ(completions[2], 6.0);
  EXPECT_DOUBLE_EQ(completions[3], 6.0);
}

TEST(Resource, WaitTimeAccounted) {
  Simulator sim;
  Resource res(sim, 1, "link");
  res.use(5.0);
  res.use(1.0);  // waits 5 seconds
  sim.run();
  EXPECT_DOUBLE_EQ(res.total_wait_time(), 5.0);
}

TEST(Resource, JobsArrivingLaterInterleave) {
  Simulator sim;
  Resource res(sim, 1, "disk");
  std::vector<std::pair<int, double>> completions;
  sim.at(0.0, [&] { res.use(2.0, [&] { completions.emplace_back(0, sim.now()); }); });
  sim.at(1.0, [&] { res.use(2.0, [&] { completions.emplace_back(1, sim.now()); }); });
  sim.at(10.0, [&] { res.use(2.0, [&] { completions.emplace_back(2, sim.now()); }); });
  sim.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_DOUBLE_EQ(completions[0].second, 2.0);
  EXPECT_DOUBLE_EQ(completions[1].second, 4.0);  // queued behind job 0
  EXPECT_DOUBLE_EQ(completions[2].second, 12.0); // idle gap before job 2
  EXPECT_NEAR(res.utilization(12.0), 6.0 / 12.0, 1e-12);
}

TEST(Resource, InvalidServerCountThrows) {
  Simulator sim;
  EXPECT_THROW(Resource(sim, 0, "bad"), std::invalid_argument);
}

TEST(Resource, CompletionCallbackMayChainUse) {
  Simulator sim;
  Resource res(sim, 1, "stage");
  double second_done = -1.0;
  res.use(1.0, [&] { res.use(2.0, [&] { second_done = sim.now(); }); });
  sim.run();
  EXPECT_DOUBLE_EQ(second_done, 3.0);
}

}  // namespace
}  // namespace tvviz
