// Tests for the network layer: link models and presets, the X-display and
// daemon transport models, the blocking queue, the wire protocol, and the
// display daemon relay with control-event backchannel.
#include <gtest/gtest.h>

#include <thread>

#include "obs/counters.hpp"
#include "net/daemon.hpp"
#include "net/errors.hpp"
#include "net/link.hpp"
#include "net/protocol.hpp"
#include "net/queue.hpp"

namespace tvviz {
namespace {

using net::BlockingQueue;
using net::ControlEvent;
using net::ControlKind;
using net::DisplayDaemon;
using net::LinkModel;
using net::MsgType;
using net::NetMessage;

// ---------------------------------------------------------------- link ----

TEST(LinkModel, TransferTimeIsAffine) {
  const LinkModel link{"t", 0.1, 1000.0};
  EXPECT_NEAR(link.transfer_seconds(0), 0.1, 1e-12);
  EXPECT_NEAR(link.transfer_seconds(1000), 1.1, 1e-12);
  EXPECT_NEAR(link.transfer_seconds(1000, 3), 1.3, 1e-12);
}

TEST(LinkModel, PresetsOrdering) {
  const auto lan = net::lan_fast();
  const auto nasa = net::wan_nasa_ucd();
  const auto japan = net::wan_japan_ucd();
  EXPECT_GT(lan.bandwidth_bytes_per_s, nasa.bandwidth_bytes_per_s);
  EXPECT_GT(nasa.bandwidth_bytes_per_s, japan.bandwidth_bytes_per_s);
  EXPECT_LT(lan.latency_s, nasa.latency_s);
  EXPECT_LT(nasa.latency_s, japan.latency_s);
}

TEST(XDisplayModel, PaysRoundTripsPerChunk) {
  net::XDisplayModel x{net::wan_nasa_ucd(), 64 * 1024, 1.0, 0.55};
  // Twice the bytes, at least twice the chunks: superlinear versus a single
  // streaming transfer.
  const double t_small = x.frame_seconds(128 * 128 * 3);
  const double t_large = x.frame_seconds(1024 * 1024 * 3);
  EXPECT_GT(t_large, 40.0 * t_small / (4.0));  // grows much faster than bytes
  EXPECT_GT(t_large, 10.0);                    // 3 MB over remote X is slow
}

TEST(XDisplayModel, CompressionBeatsXForLargeFrames) {
  // The Figure 8 relationship: daemon transport of the compressed frame is
  // far cheaper than X transport of the raw frame, and the gap widens.
  net::XDisplayModel x{net::wan_nasa_ucd(), 64 * 1024, 1.0, 0.55};
  net::DaemonTransportModel daemon{net::wan_nasa_ucd()};
  for (const std::size_t size : {256u, 512u, 1024u}) {
    const std::size_t raw = size * size * 3;
    const std::size_t compressed = raw / 60;  // typical JPEG+LZO ratio
    EXPECT_GT(x.frame_seconds(raw), 4.0 * daemon.frame_seconds(compressed))
        << size;
  }
}

TEST(XDisplayModel, JapanLinkRoughlyTwiceNasa) {
  // §6 / Figure 11: the Japan->UCD X display took about twice the NASA case.
  net::XDisplayModel nasa{net::wan_nasa_ucd(), 64 * 1024, 1.0, 0.55};
  net::XDisplayModel japan{net::wan_japan_ucd(), 64 * 1024, 1.0, 0.55};
  const std::size_t raw = 512 * 512 * 3;
  const double ratio = japan.frame_seconds(raw) / nasa.frame_seconds(raw);
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 4.5);
}

// --------------------------------------------------------------- queue ----

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.try_pop(), 3);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BlockingQueue, CloseDrainsThenEnds) {
  BlockingQueue<int> q;
  q.push(7);
  q.close();
  EXPECT_FALSE(q.push(8));
  EXPECT_EQ(q.pop(), 7);
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_TRUE(q.closed());
}

TEST(BlockingQueue, BoundedBlocksProducerUntilConsumed) {
  BlockingQueue<int> q(2);
  q.push(1);
  q.push(2);
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    q.push(3);
    third_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load());
  EXPECT_EQ(q.pop(), 1);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_EQ(q.size(), 2u);
}

TEST(BlockingQueue, BlockedConsumerWakesOnPush) {
  BlockingQueue<int> q;
  std::optional<int> got;
  std::thread consumer([&] { got = q.pop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.push(42);
  consumer.join();
  EXPECT_EQ(got, 42);
}

TEST(BlockingQueue, TryPopDistinguishesEmptyFromClosed) {
  // Regression: the optional-returning try_pop conflated "nothing buffered
  // yet" with "closed and drained", so non-blocking pollers could never
  // decide when to stop. The tri-state overload separates the cases.
  BlockingQueue<int> q;
  int out = 0;
  EXPECT_EQ(q.try_pop(out), net::TryPopResult::kEmpty);
  q.push(5);
  q.push(6);
  q.close();
  EXPECT_EQ(q.try_pop(out), net::TryPopResult::kItem);
  EXPECT_EQ(out, 5);
  EXPECT_EQ(q.try_pop(out), net::TryPopResult::kItem);
  EXPECT_EQ(out, 6);
  EXPECT_EQ(q.try_pop(out), net::TryPopResult::kClosed);
  EXPECT_EQ(q.try_pop(out), net::TryPopResult::kClosed);
}

// ------------------------------------------------------------ protocol ----

TEST(Protocol, ControlEventRoundTrip) {
  ControlEvent e;
  e.kind = ControlKind::kSetView;
  e.azimuth = 1.25;
  e.elevation = -0.5;
  e.zoom = 2.0;
  e.name = "fire";
  const auto bytes = e.serialize();
  const ControlEvent out = ControlEvent::deserialize(bytes);
  EXPECT_EQ(out.kind, ControlKind::kSetView);
  EXPECT_DOUBLE_EQ(out.azimuth, 1.25);
  EXPECT_DOUBLE_EQ(out.elevation, -0.5);
  EXPECT_DOUBLE_EQ(out.zoom, 2.0);
  EXPECT_EQ(out.name, "fire");
}

TEST(Protocol, WireSizeAccountsForFraming) {
  NetMessage msg;
  msg.codec = "jpeg+lzo";
  msg.payload = util::Bytes(100);
  EXPECT_GT(msg.wire_size(), 100u);
  EXPECT_LT(msg.wire_size(), 160u);
}

// -------------------------------------------------------------- daemon ----

TEST(Daemon, RelaysFramesToDisplay) {
  DisplayDaemon daemon;
  auto renderer = daemon.connect_renderer();
  auto display = daemon.connect_display();

  NetMessage msg;
  msg.type = MsgType::kFrame;
  msg.frame_index = 3;
  msg.codec = "raw";
  msg.payload = {1, 2, 3};
  renderer->send(msg);

  const auto got = display->next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->frame_index, 3);
  EXPECT_EQ(got->payload, (util::Bytes{1, 2, 3}));
  EXPECT_EQ(daemon.frames_relayed(), 1u);
  EXPECT_GT(daemon.bytes_relayed(), 3u);
}

TEST(Daemon, BroadcastsControlToAllRenderers) {
  DisplayDaemon daemon;
  auto r1 = daemon.connect_renderer();
  auto r2 = daemon.connect_renderer();
  auto display = daemon.connect_display();

  ControlEvent e;
  e.kind = ControlKind::kSetColorMap;
  e.name = "dense";
  display->send_control(e);

  // Control events travel through the relay thread; poll briefly.
  const auto wait_for = [](DisplayDaemon::RendererPort& port) {
    for (int i = 0; i < 200; ++i) {
      if (auto ev = port.poll_control()) return ev;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return std::optional<ControlEvent>{};
  };
  const auto e1 = wait_for(*r1);
  const auto e2 = wait_for(*r2);
  ASSERT_TRUE(e1.has_value());
  ASSERT_TRUE(e2.has_value());
  EXPECT_EQ(e1->name, "dense");
  EXPECT_EQ(e2->name, "dense");
}

TEST(Daemon, MultipleDisplaysEachGetFrames) {
  DisplayDaemon daemon;
  auto renderer = daemon.connect_renderer();
  auto d1 = daemon.connect_display();
  auto d2 = daemon.connect_display();

  NetMessage msg;
  msg.type = MsgType::kFrame;
  msg.frame_index = 1;
  renderer->send(msg);
  EXPECT_TRUE(d1->next().has_value());
  EXPECT_TRUE(d2->next().has_value());
}

TEST(Daemon, ShutdownUnblocksDisplay) {
  DisplayDaemon daemon;
  auto display = daemon.connect_display();
  std::optional<NetMessage> got = NetMessage{};
  std::thread consumer([&] { got = display->next(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  daemon.shutdown();
  consumer.join();
  EXPECT_FALSE(got.has_value());
}

TEST(Daemon, SubImagePiecesCountOneFrame) {
  DisplayDaemon daemon;
  auto renderer = daemon.connect_renderer();
  auto display = daemon.connect_display();
  for (int piece = 0; piece < 4; ++piece) {
    NetMessage msg;
    msg.type = MsgType::kSubImage;
    msg.frame_index = 0;
    msg.piece = piece;
    msg.piece_count = 4;
    renderer->send(msg);
  }
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(display->next().has_value());
  EXPECT_EQ(daemon.frames_relayed(), 1u);
}

TEST(Daemon, TryNextPollerTerminatesAfterShutdown) {
  // Regression companion to TryPopDistinguishesEmptyFromClosed at the
  // DisplayPort level: a non-blocking poller must observe every buffered
  // frame and then learn, unambiguously, that the daemon is gone.
  DisplayDaemon daemon;
  auto renderer = daemon.connect_renderer();
  auto display = daemon.connect_display();
  for (int i = 0; i < 3; ++i) {
    NetMessage msg;
    msg.type = MsgType::kFrame;
    msg.frame_index = i;
    renderer->send(msg);
  }
  // Let the relay move the frames into the display buffer before shutdown.
  while (display->buffered() < 3)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  daemon.shutdown();

  int frames_seen = 0;
  std::thread poller([&] {
    NetMessage out;
    for (;;) {
      const net::TryPopResult r = display->try_next(out);
      if (r == net::TryPopResult::kClosed) return;
      if (r == net::TryPopResult::kItem)
        ++frames_seen;
      else
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  poller.join();  // hangs forever if kClosed is never reported
  EXPECT_EQ(frames_seen, 3);
  EXPECT_TRUE(display->closed());
}

TEST(Protocol, RejectsInvalidMessageType) {
  NetMessage msg;
  msg.type = MsgType::kFrame;
  msg.payload = {1, 2, 3};
  auto wire = net::serialize_message(msg);
  wire[0] = 0xEE;  // not a MsgType
  EXPECT_THROW(net::deserialize_message(wire), std::runtime_error);
}

TEST(Protocol, RejectsTruncatedFrame) {
  NetMessage msg;
  msg.type = MsgType::kFrame;
  msg.codec = "jpeg";
  msg.payload = util::Bytes(64, 0xAB);
  auto wire = net::serialize_message(msg);
  // Drop the tail: the recorded payload length now exceeds the bytes
  // actually present, which must surface as a descriptive runtime_error
  // (not an out_of_range escaping from the byte reader).
  wire.resize(wire.size() - 10);
  EXPECT_THROW(net::deserialize_message(wire), std::runtime_error);
  // Cutting into the fixed header must be caught too.
  auto short_wire = net::serialize_message(msg);
  short_wire.resize(4);
  EXPECT_THROW(net::deserialize_message(short_wire), std::runtime_error);
}

TEST(Protocol, RejectsTrailingGarbage) {
  NetMessage msg;
  msg.type = MsgType::kControl;
  msg.payload = {7, 7};
  auto wire = net::serialize_message(msg);
  wire.push_back(0x00);
  EXPECT_THROW(net::deserialize_message(wire), std::runtime_error);
}


TEST(Protocol, ScatterGatherHeaderPlusPayloadEqualsFullFrame) {
  NetMessage msg;
  msg.type = MsgType::kSubImage;
  msg.frame_index = 17;
  msg.piece = 2;
  msg.piece_count = 4;
  msg.codec = "jpeg+lzo";
  msg.payload = util::Bytes(300, 0x5C);
  const auto full = net::serialize_message(msg);
  auto header = net::serialize_header(msg);
  EXPECT_EQ(header.size(), net::header_wire_size(msg));
  header.insert(header.end(), msg.payload.begin(), msg.payload.end());
  EXPECT_EQ(header, full);
}

TEST(Protocol, SerializeReservesExactlyOnce) {
  // Regression: serialize_message / serialize_header / HelloInfo::serialize
  // under-reserving means the frame reallocates mid-write; with the exact
  // reserve the output vector's capacity equals its size.
  NetMessage msg;
  msg.type = MsgType::kFrame;
  msg.frame_index = 123456;
  msg.codec = "collective-jpeg";
  msg.payload = util::Bytes(100000, 0x42);  // varint length > 1 byte
  const auto wire = net::serialize_message(msg);
  EXPECT_EQ(wire.capacity(), wire.size());
  const auto header = net::serialize_header(msg);
  EXPECT_EQ(header.capacity(), header.size());

  net::HelloInfo info;
  info.role = "display";
  info.client_id = "viewer-with-a-long-stable-identity-string";
  info.queue_frames = 32;
  info.wants_heartbeat = true;
  const auto hello = info.serialize();
  EXPECT_EQ(hello.capacity(), hello.size());
}

TEST(Protocol, FrameRoundTripNeverDuplicatesPayloadBytes) {
  // Property test over sizes straddling the pool buckets: once a frame body
  // exists as a SharedBytes, parsing it must not copy the payload — the
  // message payload is a view into the body, byte-for-byte identical, and
  // the deep-copy counter stays flat.
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{255},
                              std::size_t{4096}, std::size_t{100000}}) {
    NetMessage msg;
    msg.type = MsgType::kFrame;
    msg.frame_index = static_cast<int>(n);
    msg.codec = "raw";
    util::Bytes data(n);
    for (std::size_t i = 0; i < n; ++i) data[i] = static_cast<std::uint8_t>(i);
    const util::Bytes expect = data;
    msg.payload = std::move(data);

    const util::SharedBytes body(net::serialize_message(msg));
    const auto copies_before =
        obs::counter("util.shared_bytes.copy_bytes").value();
    const NetMessage out = net::deserialize_frame(body);
    EXPECT_EQ(obs::counter("util.shared_bytes.copy_bytes").value(),
              copies_before)
        << "payload bytes were duplicated for n=" << n;
    EXPECT_EQ(out.payload, expect);
    if (n > 0) {
      EXPECT_TRUE(out.payload.shares_storage_with(body));
      EXPECT_GE(out.payload.data(), body.data());
    }
  }
}

TEST(Protocol, DeserializeFrameValidatesLikeDeserializeMessage) {
  NetMessage msg;
  msg.type = MsgType::kControl;
  msg.payload = {7, 7};
  auto wire = net::serialize_message(msg);
  wire.push_back(0x00);
  EXPECT_THROW(net::deserialize_frame(util::SharedBytes(std::move(wire))),
               std::runtime_error);
  auto wire2 = net::serialize_message(msg);
  wire2[0] = 0xEE;
  EXPECT_THROW(net::deserialize_frame(util::SharedBytes(std::move(wire2))),
               std::runtime_error);
  auto wire3 = net::serialize_message(msg);
  wire3.resize(wire3.size() - 1);
  EXPECT_THROW(net::deserialize_frame(util::SharedBytes(std::move(wire3))),
               std::runtime_error);
}

// ----------------------------------------------------- protocol v4 ----

TEST(ProtocolV4, HelloCarriesWantsDepthAndDegradesByTruncation) {
  net::HelloInfo info;
  info.role = "display";
  info.wants_frame_refs = true;
  info.wants_depth = true;
  const auto echoed = net::parse_hello(net::make_hello(info));
  EXPECT_EQ(echoed.version, 4u);
  EXPECT_TRUE(echoed.wants_frame_refs);
  EXPECT_TRUE(echoed.wants_depth);

  // Trailing-byte contract: each older generation's payload is a strict
  // prefix, and the missing capabilities default off.
  auto hello = net::make_hello(info);
  auto v3 = hello;
  v3.payload = hello.payload.view(0, hello.payload.size() - 1);
  EXPECT_TRUE(net::parse_hello(v3).wants_frame_refs);
  EXPECT_FALSE(net::parse_hello(v3).wants_depth);
  auto v2 = hello;
  v2.payload = hello.payload.view(0, hello.payload.size() - 2);
  EXPECT_FALSE(net::parse_hello(v2).wants_frame_refs);
  EXPECT_FALSE(net::parse_hello(v2).wants_depth);
}

NetMessage color_frame(int step) {
  NetMessage msg;
  msg.type = MsgType::kFrame;
  msg.frame_index = step;
  msg.piece_count = 1;
  msg.codec = "jpeg+lzo";
  msg.payload = util::Bytes{10, 20, 30, 40, 50};
  return msg;
}

TEST(ProtocolV4, DepthContainerSurvivesTheWire) {
  const util::Bytes plane(32, 0x5A);
  const NetMessage container = net::make_depth_frame(color_frame(7), plane);
  EXPECT_TRUE(net::is_depth_frame(container));
  EXPECT_EQ(container.codec, "zd4+jpeg+lzo");
  EXPECT_EQ(container.frame_index, 7);

  const auto wire = net::serialize_message(container);
  const NetMessage back = net::deserialize_message(wire);
  ASSERT_TRUE(net::is_depth_frame(back));
  const auto parts = net::split_depth_frame(back);
  EXPECT_EQ(parts.color.codec, "jpeg+lzo");
  EXPECT_EQ(parts.color.frame_index, 7);
  EXPECT_EQ(parts.color.payload, (util::Bytes{10, 20, 30, 40, 50}));
  EXPECT_EQ(parts.depth_plane, plane);
}

TEST(ProtocolV4, StripDepthIsAZeroCopyView) {
  const NetMessage container =
      net::make_depth_frame(color_frame(0), util::Bytes(8, 1));
  const NetMessage color = net::strip_depth(container);
  EXPECT_FALSE(net::is_depth_frame(color));
  EXPECT_EQ(color.codec, "jpeg+lzo");
  // The stripped payload aliases the container's allocation.
  EXPECT_GE(color.payload.data(), container.payload.data());
  EXPECT_LE(color.payload.data() + color.payload.size(),
            container.payload.data() + container.payload.size());
}

TEST(ProtocolV4, DepthContainerRidesFrameDataUnchanged) {
  // Relay caches ship containers as kFrameData; the ContentId must cover
  // the container bytes so the edge's integrity check still holds.
  const NetMessage container =
      net::make_depth_frame(color_frame(2), util::Bytes(8, 9));
  const NetMessage data = net::make_frame_data(container);
  EXPECT_TRUE(net::is_depth_frame(data));
  EXPECT_EQ(net::content_id_of(data), net::content_id_of(container));
}

TEST(ProtocolV4, MalformedContainersFailLoudly) {
  // Not a container at all.
  EXPECT_THROW(net::strip_depth(color_frame(0)), net::WireError);
  // Advertised color length exceeding the payload.
  NetMessage bogus = color_frame(0);
  bogus.codec = "zd4+raw";
  util::ByteWriter w;
  w.varint(1000);
  w.raw(util::Bytes(4, 0));
  bogus.payload = w.take();
  EXPECT_THROW(net::split_depth_frame(bogus), net::WireError);
  // Truncated before the varint completes.
  bogus.payload = util::Bytes{0xFF};
  EXPECT_THROW(net::split_depth_frame(bogus), net::WireError);
}

TEST(Daemon, ShutdownFlushesQueuedTailFrames) {
  // Regression: shutdown() used to close the display queues before the
  // relay thread finished draining the inbox, racing the drain and
  // silently dropping the tail frames of a run. Everything the renderers
  // handed over before shutdown must reach the display.
  for (int round = 0; round < 20; ++round) {
    DisplayDaemon daemon;
    auto renderer = daemon.connect_renderer();
    auto display = daemon.connect_display();
    for (int i = 0; i < 5; ++i) {
      NetMessage msg;
      msg.type = MsgType::kFrame;
      msg.frame_index = i;
      renderer->send(msg);
    }
    daemon.shutdown();  // must flush, not truncate
    int seen = 0;
    int last = -1;
    while (auto msg = display->next()) {
      last = msg->frame_index;
      ++seen;
    }
    EXPECT_EQ(seen, 5) << "round " << round;
    EXPECT_EQ(last, 4) << "round " << round;
  }
}

TEST(Daemon, ShutdownKeepsFlushingToSlowButAliveDisplay) {
  // Regression: the shutdown drain gave each display a single 50 ms grace
  // per frame and then dropped it, so a display that was still consuming —
  // just slowly — lost tail frames once its small buffer filled. As long
  // as the consumer makes progress, the flush must keep going.
  DisplayDaemon daemon(2);  // tiny buffer: the drain must wait on the consumer
  auto renderer = daemon.connect_renderer();
  auto display = daemon.connect_display();
  constexpr int kFrames = 6;
  std::atomic<int> seen{0};
  std::thread consumer([&] {
    while (display->next()) {
      seen.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
    }
  });
  for (int i = 0; i < kFrames; ++i) {
    NetMessage msg;
    msg.type = MsgType::kFrame;
    msg.frame_index = i;
    renderer->send(msg);
  }
  daemon.shutdown();  // must flush every frame to the slow-but-live display
  consumer.join();
  EXPECT_EQ(seen.load(), kFrames);
}

TEST(Daemon, ThrottleDelaysForwarding) {
  DisplayDaemon daemon;
  // 1 kB payload at 10 kB/s, scaled 1:1 -> ~0.1 s delay.
  daemon.set_wan_throttle(LinkModel{"slow", 0.0, 10000.0}, 1.0);
  auto renderer = daemon.connect_renderer();
  auto display = daemon.connect_display();
  NetMessage msg;
  msg.type = MsgType::kFrame;
  msg.payload = util::Bytes(1000);
  const auto t0 = std::chrono::steady_clock::now();
  renderer->send(msg);
  ASSERT_TRUE(display->next().has_value());
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GT(elapsed, 0.08);
}

}  // namespace
}  // namespace tvviz
