// MUST NOT COMPILE (any compiler): util::LockGuard is a scoped capability
// and must not be copyable — a copy would double-unlock in the destructors.
// Expected diagnostic: "deleted".
#include "util/mutex.hpp"

int main() {
  tvviz::util::Mutex mutex;
  tvviz::util::LockGuard lock(mutex);
  tvviz::util::LockGuard copy = lock;  // BAD: copy ctor is deleted
  (void)copy;
  return 0;
}
