// MUST NOT COMPILE under clang -Werror=thread-safety: `add_locked` is
// TVVIZ_REQUIRES(mutex_) — the *_locked helper pattern used across src/ —
// and is called without the lock held. Expected diagnostic: "requires
// holding mutex".
#include "util/mutex.hpp"

namespace {

class Account {
 public:
  void deposit(int amount) { add_locked(amount); }  // BAD: lock not taken

 private:
  void add_locked(int amount) TVVIZ_REQUIRES(mutex_) { balance_ += amount; }

  tvviz::util::Mutex mutex_;
  int balance_ TVVIZ_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(1);
  return 0;
}
