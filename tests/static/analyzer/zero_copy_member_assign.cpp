// expect-reject: zero-copy-escape
//
// A raw pointer obtained from SharedBytes::data() is stored into a member
// of a class that keeps no SharedBytes handle: the bytes can be freed (or
// returned to the pool) while `bytes_` still points at them.
#include <cstddef>
#include <cstdint>

#include "util/shared_bytes.hpp"

namespace fixture {

class DanglingView {
 public:
  void adopt(const tvviz::util::SharedBytes& frame) {
    bytes_ = frame.data();  // flagged: no handle stored alongside
    size_ = frame.size();
  }

 private:
  const std::uint8_t* bytes_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace fixture
