// expect-reject: loop-this-capture
//
// A persistent EventLoop::add registration captures `this` with no
// std::weak_ptr guard captured alongside: the callback can fire after the
// object is destroyed. (One-shot post/post_after closures are exempt; the
// persistent listener is the dangerous one.)
#include <cstdint>

#include "net/event_loop.hpp"

namespace fixture {

class Listener {
 public:
  void arm(tvviz::net::EventLoop& loop, int fd) {
    loop.add(fd, tvviz::net::kEventRead,
             [this](std::uint32_t) { ++events_; });  // flagged
  }

 private:
  std::uint64_t events_ = 0;
};

}  // namespace fixture
