// expect-clean
//
// The catch-and-evict pattern (DESIGN.md §14): a worker job parses inside
// try/catch and turns a malformed frame into an eviction instead of
// letting the exception unwind into the pool.
#include <cstdint>
#include <exception>
#include <vector>

#include "net/event_loop.hpp"
#include "net/protocol.hpp"

namespace fixture {

void evict(int fd);

void parse_on_loop(tvviz::net::EventLoop& loop, int fd,
                   const std::vector<std::uint8_t>& bytes) {
  loop.post([fd, bytes] {
    try {
      auto msg = tvviz::net::deserialize_message(bytes);  // ok: covered
      (void)msg;
    } catch (const std::exception&) {
      evict(fd);
    }
  });
}

}  // namespace fixture
