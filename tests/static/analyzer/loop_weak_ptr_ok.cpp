// expect-clean
//
// The established lifetime idiom for persistent registrations
// (hub/tcp_hub.cpp): capture `this` for cheap access plus a
// std::weak_ptr to the session that gates every use. One-shot post /
// post_after closures may capture `this` freely — the registration does
// not outlive the call that scheduled it.
#include <cstdint>
#include <memory>

#include "net/event_loop.hpp"

namespace fixture {

struct Session {
  std::uint64_t events = 0;
};

class Hub {
 public:
  void arm(tvviz::net::EventLoop& loop, int fd,
           const std::shared_ptr<Session>& session) {
    loop.add(fd, tvviz::net::kEventRead,
             [this, ws = std::weak_ptr<Session>(session)](std::uint32_t) {
               if (auto s = ws.lock()) on_ready(*s);
             });
    loop.post([this] { ++posts_; });  // one-shot: exempt
  }

 private:
  void on_ready(Session& session) { ++session.events; }

  std::uint64_t posts_ = 0;
};

}  // namespace fixture
