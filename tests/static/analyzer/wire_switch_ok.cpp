// expect-clean
//
// The two sanctioned shapes: a fully-enumerated switch (the compiler's
// -Wswitch then guards future additions), and a partial switch whose
// default does something observable (here: throws).
#include <stdexcept>

#include "net/protocol.hpp"

namespace fixture {

const char* name_of(tvviz::net::MsgType type) {
  using tvviz::net::MsgType;
  switch (type) {  // ok: every enumerator handled, no default needed
    case MsgType::kHello: return "hello";
    case MsgType::kFrame: return "frame";
    case MsgType::kSubImage: return "subimage";
    case MsgType::kControl: return "control";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kHelloAck: return "hello_ack";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kAck: return "ack";
    case MsgType::kError: return "error";
    case MsgType::kFrameRef: return "frame_ref";
    case MsgType::kFrameFetch: return "frame_fetch";
    case MsgType::kFrameData: return "frame_data";
  }
  return "?";
}

int expect_frame(tvviz::net::MsgType type) {
  switch (type) {
    case tvviz::net::MsgType::kFrame:
      return 1;
    default:  // ok: unexpected types are reported, not swallowed
      throw std::runtime_error("unexpected message type");
  }
}

}  // namespace fixture
