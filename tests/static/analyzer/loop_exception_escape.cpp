// expect-reject: loop-exception-escape
// expect-reject: loop-exception-escape
//
// Exceptions escaping a callback that runs on the loop thread or a worker:
// the dispatch loop has no handler, so std::terminate takes the whole hub
// down. Both a literal `throw` and a call into the throwing wire API
// (deserialize_message) are flagged when no try within the lambda covers
// them.
#include <cstdint>
#include <vector>

#include "net/event_loop.hpp"
#include "net/protocol.hpp"

namespace fixture {

void parse_on_loop(tvviz::net::EventLoop& loop,
                   const std::vector<std::uint8_t>& bytes) {
  loop.post([bytes] {
    if (bytes.empty()) throw 42;  // flagged: escapes into the dispatch loop
    auto msg = tvviz::net::deserialize_message(bytes);  // flagged: can throw
    (void)msg;
  });
}

}  // namespace fixture
