// expect-clean
//
// Both sanctioned forms of keeping an alias: a class that stores the
// SharedBytes handle next to the raw view, and a lambda that captures the
// handle by value alongside the pointer. The handle keeps the storage (and
// a pooled buffer's pool lease) alive as long as the alias.
#include <cstddef>
#include <cstdint>
#include <functional>

#include "util/shared_bytes.hpp"

namespace fixture {

class AnchoredView {
 public:
  void adopt(const tvviz::util::SharedBytes& frame) {
    owner_ = frame;          // handle travels with the alias
    bytes_ = frame.data();   // ok: class keeps a SharedBytes member
  }

 private:
  tvviz::util::SharedBytes owner_;
  const std::uint8_t* bytes_ = nullptr;
};

std::function<const std::uint8_t*()> defer_read(
    const tvviz::util::SharedBytes& frame) {
  return [frame, p = frame.data()] {  // ok: handle captured by value
    return frame.empty() ? nullptr : p;
  };
}

}  // namespace fixture
