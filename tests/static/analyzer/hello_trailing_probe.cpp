// expect-reject: hello-trailing-bytes
// expect-reject: hello-trailing-bytes
//
// Hello-parsing code probing the reader directly for trailing capability
// bytes. Every probe hand-rolls the "v2 parsers ignore trailing bytes"
// contract one capability at a time; net::read_trailing_capability() is
// the single sanctioned reader.
#include <cstdint>
#include <span>

#include "util/bytes.hpp"

namespace fixture {

struct Caps {
  bool wants_frame_refs = false;
  bool wants_depth = false;
};

Caps parse_hello_caps(std::span<const std::uint8_t> payload) {
  tvviz::util::ByteReader r(payload);
  Caps caps;
  caps.wants_frame_refs = r.remaining() > 0 && r.u8() != 0;  // flagged
  caps.wants_depth = r.remaining() > 0 && r.u8() != 0;       // flagged
  return caps;
}

}  // namespace fixture
