// expect-clean
//
// The suppression mechanism itself: a finding silenced by an allow-marker
// with a justification, on the flagged line or the line above. A marker
// names exactly one check id — it never blankets the file.
#include "net/protocol.hpp"

namespace fixture {

int classify(tvviz::net::MsgType type) {
  switch (type) {
    case tvviz::net::MsgType::kFrame:
      return 1;
    // tvviz-analyzer: allow(wire-switch-default): suppression fixture
    default:
      break;
  }
  return 0;
}

}  // namespace fixture
