// expect-reject: zero-copy-escape
//
// Same escape through a constructor initializer: the alias is created at
// construction and the handle is dropped when the caller's argument dies.
#include <cstdint>
#include <span>

#include "util/shared_bytes.hpp"

namespace fixture {

class SpanKeeper {
 public:
  explicit SpanKeeper(const tvviz::util::SharedBytes& frame)
      : view_(frame.span()) {}  // flagged: span aliases freed storage

 private:
  std::span<const std::uint8_t> view_;
};

}  // namespace fixture
