// expect-reject: wire-switch-default
//
// A `default: break;` in a switch over net::MsgType silently swallows any
// message type this build does not know — exactly the fallthrough that
// hides a protocol-v5 sender behind a hung viewer.
#include "net/protocol.hpp"

namespace fixture {

int classify(tvviz::net::MsgType type) {
  switch (type) {
    case tvviz::net::MsgType::kFrame:
      return 1;
    case tvviz::net::MsgType::kControl:
      return 2;
    default:  // flagged: silently drops unknown message types
      break;
  }
  return 0;
}

}  // namespace fixture
