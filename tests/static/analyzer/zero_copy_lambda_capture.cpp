// expect-reject: zero-copy-escape
//
// A lambda init-captures a raw pointer into a SharedBytes without also
// capturing the handle by value; if the callback runs after the caller's
// handle drops, the pointer dangles.
#include <cstdint>
#include <functional>

#include "util/shared_bytes.hpp"

namespace fixture {

std::function<const std::uint8_t*()> defer_read(
    const tvviz::util::SharedBytes& frame) {
  return [p = frame.data()] {  // flagged: handle not captured alongside
    return p;
  };
}

}  // namespace fixture
