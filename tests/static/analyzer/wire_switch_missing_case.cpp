// expect-reject: wire-switch-default
//
// A switch over net::MsgType that handles a subset of the enumerators with
// no default: when protocol v5 adds a message type, this code falls
// through without a trace. Either enumerate everything or add a default
// that throws/logs/counts.
#include "net/protocol.hpp"

namespace fixture {

bool is_frame_bearing(tvviz::net::MsgType type) {
  switch (type) {  // flagged: kControl, kShutdown, ... unhandled, no default
    case tvviz::net::MsgType::kFrame:
    case tvviz::net::MsgType::kSubImage:
    case tvviz::net::MsgType::kFrameData:
      return true;
    case tvviz::net::MsgType::kHello:
      return false;
  }
  return false;
}

}  // namespace fixture
