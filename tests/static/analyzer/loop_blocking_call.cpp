// expect-reject: loop-blocking-call
// expect-reject: loop-blocking-call
//
// Blocking primitives inside callbacks registered on the event loop: a
// BlockingQueue::pop (unbounded wait) posted to the loop thread, and a
// CondVar::wait inside a readiness callback. Either one stalls every
// descriptor the loop serves. The deadline-carrying forms (pop_for,
// try_pop, wait_until) are the sanctioned replacements.
#include <cstdint>

#include "net/event_loop.hpp"
#include "net/queue.hpp"
#include "util/mutex.hpp"

namespace fixture {

void drain_on_loop(tvviz::net::EventLoop& loop,
                   tvviz::net::BlockingQueue<int>& queue) {
  loop.post([&queue] {
    auto item = queue.pop();  // flagged: unbounded block on the loop thread
    (void)item;
  });
}

struct Waiter {
  tvviz::util::Mutex mutex;
  tvviz::util::CondVar ready;
  bool signaled = false;
};

void arm(tvviz::net::EventLoop& loop, int fd, Waiter& waiter) {
  loop.add(fd, tvviz::net::kEventRead, [&waiter](std::uint32_t) {
    tvviz::util::LockGuard lock(waiter.mutex);
    while (!waiter.signaled) waiter.ready.wait(waiter.mutex);  // flagged
  });
}

}  // namespace fixture
