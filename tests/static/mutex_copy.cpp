// MUST NOT COMPILE (any compiler): util::Mutex is a capability and must not
// be copyable — a copied mutex silently stops guarding the original's
// state. Expected diagnostic: "deleted".
#include "util/mutex.hpp"

int main() {
  tvviz::util::Mutex a;
  tvviz::util::Mutex b = a;  // BAD: copy ctor is deleted
  (void)b;
  return 0;
}
