// MUST COMPILE (tests/static positive control). Correctly annotated code:
// every guarded access holds the right lock, the REQUIRES helper is called
// under the lock, and the EXCLUDES function is called lock-free. If this
// snippet ever fails, the harness — not the contracts — is broken, and the
// expected-failure results of the sibling snippets mean nothing.
#include "util/mutex.hpp"

namespace {

class Account {
 public:
  void deposit(int amount) TVVIZ_EXCLUDES(mutex_) {
    tvviz::util::LockGuard lock(mutex_);
    add_locked(amount);
  }

  int balance() const TVVIZ_EXCLUDES(mutex_) {
    tvviz::util::LockGuard lock(mutex_);
    return balance_;
  }

  void wait_nonzero() TVVIZ_EXCLUDES(mutex_) {
    tvviz::util::LockGuard lock(mutex_);
    while (balance_ == 0) cv_.wait(mutex_);
  }

 private:
  void add_locked(int amount) TVVIZ_REQUIRES(mutex_) { balance_ += amount; }

  mutable tvviz::util::Mutex mutex_;
  tvviz::util::CondVar cv_;
  int balance_ TVVIZ_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(1);
  return account.balance() == 1 ? 0 : 1;
}
