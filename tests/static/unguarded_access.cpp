// MUST NOT COMPILE under clang -Werror=thread-safety: `balance_` is
// TVVIZ_GUARDED_BY(mutex_) and is read without the lock. Expected
// diagnostic: "requires holding mutex".
#include "util/mutex.hpp"

namespace {

class Account {
 public:
  int balance() const { return balance_; }  // BAD: no lock held

 private:
  mutable tvviz::util::Mutex mutex_;
  int balance_ TVVIZ_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  return account.balance();
}
