// MUST NOT COMPILE under clang -Werror=thread-safety: `close` is
// TVVIZ_EXCLUDES(send_mutex_) — the HubTcpViewer contract from the PR 4
// review ("close() must never wait on send_mutex_: the sender it would wait
// for is unblocked only by close() itself") — and is called while holding
// that very lock. Expected diagnostic: "while mutex ... is held".
#include "util/mutex.hpp"

namespace {

class Viewer {
 public:
  void send_then_close() {
    tvviz::util::LockGuard lock(send_mutex_);
    close();  // BAD: close() excludes send_mutex_, which is held here
  }

  void close() TVVIZ_EXCLUDES(send_mutex_) {}

 private:
  tvviz::util::Mutex send_mutex_;
};

}  // namespace

int main() {
  Viewer viewer;
  viewer.send_then_close();
  return 0;
}
