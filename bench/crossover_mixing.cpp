// §6 selective test, shock/fluid-mixing data set: with 16x the data points
// of the small sets, rendering dominates — a 512^2 frame takes ~4 s to
// generate while image transport is about a tenth of that, "making the
// image transport less a concern".
#include <cstdio>

#include "bench/common.hpp"
#include "codec/image_codec.hpp"
#include "core/costs.hpp"
#include "util/flags.hpp"

using namespace tvviz;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int size = static_cast<int>(flags.get_int("size", 512));

  bench::print_header(
      "§6 crossover — shock/fluid mixing: rendering dominates transport",
      "640x256x256 x 265 steps (44 GB); real compressed frame sizes");

  const auto mixing_desc = field::shock_mixing_desc();
  const auto vortex_desc = field::turbulent_vortex_desc();
  std::printf("data points per step:   mixing %s vs vortex %s (%.0fx)\n",
              bench::fmt_bytes(static_cast<double>(mixing_desc.dims.voxels())).c_str(),
              bench::fmt_bytes(static_cast<double>(vortex_desc.dims.voxels())).c_str(),
              static_cast<double>(mixing_desc.dims.voxels()) /
                  static_cast<double>(vortex_desc.dims.voxels()));
  std::printf("total dataset size:     %.1f GB (paper: \"over 44 gigabytes\")\n",
              static_cast<double>(mixing_desc.total_bytes()) / 1e9);

  const auto codec = codec::make_image_codec("jpeg+lzo", 75);
  const auto frame = bench::render_frame(field::DatasetKind::kShockMixing, size);
  const std::size_t compressed = codec->encode(frame).size();

  const auto costs = core::StageCosts::rwcp_paper();
  const std::size_t pixels = static_cast<std::size_t>(size) * size;
  const double t_render = costs.render_seconds_group(
      mixing_desc.dims.voxels(), pixels, 64, mixing_desc.bytes_per_step());
  const auto profile = core::CodecProfile::paper("jpeg+lzo");
  const double t_transport = costs.wan.transfer_seconds(compressed) +
                             profile.decompress_seconds(pixels) +
                             pixels * costs.client_display_s_per_pixel;

  std::printf("\nrender %d^2 (64 procs): %s  (paper: ~4 s)\n", size,
              bench::fmt_seconds(t_render).c_str());
  std::printf("transport + display:    %s  (paper: ~1/10 of rendering)\n",
              bench::fmt_seconds(t_transport).c_str());
  std::printf("\ntransport / render = %.2f — rendering dominates: %s\n",
              t_transport / t_render,
              t_transport < 0.5 * t_render ? "yes (paper shape)" : "NO");
  return 0;
}
