// Figure 7: the three §3 performance metrics — overall execution time,
// start-up latency, and average inter-frame delay — versus the number of
// partitions, for P = 32 on the RWCP cluster.
//
// Expected shape: start-up latency monotonically increasing in L; overall
// time and inter-frame delay U-shaped (inter-frame tracks overall).
#include <cstdio>

#include "bench/common.hpp"
#include "core/pipesim.hpp"
#include "util/flags.hpp"

using namespace tvviz;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int p = static_cast<int>(flags.get_int("processors", 32));
  bench::init_observability(flags);

  bench::print_header(
      "Figure 7 — metrics vs #partitions, P = " + std::to_string(p) +
          " (RWCP cluster)",
      "turbulent jet, 128 steps, 256x256 image");

  core::PipelineConfig cfg;
  cfg.processors = p;
  cfg.dataset = field::turbulent_jet_desc();
  cfg.steps_limit = 128;
  cfg.image_width = cfg.image_height = 256;
  cfg.costs = core::StageCosts::rwcp_paper();
  cfg.codec = core::CodecProfile::paper("jpeg+lzo");

  std::printf("%-12s %-18s %-18s %-18s\n", "partitions", "overall time",
              "start-up latency", "inter-frame delay");
  double prev_latency = 0.0;
  bool latency_monotone = true;
  for (int l = 1; l <= p; l *= 2) {
    cfg.groups = l;
    const auto result = core::simulate_pipeline(cfg);
    const auto& m = result.metrics;
    std::printf("L = %-8d %-18s %-18s %-18s\n", l,
                bench::fmt_seconds(m.overall_time).c_str(),
                bench::fmt_seconds(m.startup_latency).c_str(),
                bench::fmt_seconds(m.inter_frame_delay).c_str());
    latency_monotone &= m.startup_latency > prev_latency;
    prev_latency = m.startup_latency;
  }
  std::printf("\nstart-up latency monotone increasing in L: %s (paper: yes)\n",
              latency_monotone ? "yes" : "NO");
  bench::finish_observability();
  return 0;
}
