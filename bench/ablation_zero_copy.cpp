// Ablation: the zero-copy frame path. A paced producer streams frames
// through the FrameHub to 1 and 8 clients; every delivery then passes a
// wire-emulation stage so the two send/receive generations can be compared
// on the same workload:
//
//   seed: one flat serialize_message buffer per delivery (payload copied
//         in) and a deserialize_message receive (payload copied back out)
//         — the pre-pool path, two payload-sized copies per delivery;
//   zero: serialize_header + a payload view handed to scatter-gather send
//         (no user-space payload copy), receive into a pooled buffer
//         parsed by deserialize_frame (payload aliases the buffer).
//
// Metrics per run: payload bytes copied (util.shared_bytes counters),
// buffer-pool hits/misses (allocations per frame at steady state), and the
// per-client inter-frame delay. The claims under test: at 8 clients the
// zero path copies at least 2x fewer payload bytes than the seed path, and
// at 1 client its inter-frame delay is no worse.
//
//   ./ablation_zero_copy [--steps 40] [--period-ms 2] [--bytes 65536]
//                        [--json BENCH_zero_copy.json]
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "hub/hub.hpp"
#include "net/protocol.hpp"
#include "obs/counters.hpp"
#include "util/flags.hpp"
#include "util/mutex.hpp"
#include "util/shared_bytes.hpp"
#include "util/timer.hpp"

using namespace tvviz;

namespace {

/// Seed-generation wire emulation: flat frame out, payload copied back in.
void wire_seed(const net::NetMessage& msg) {
  net::NetMessage wire = msg;
  // The seed NetMessage carried util::Bytes, so staging it for the socket
  // duplicated the payload; copy_of stands in for that serialize memcpy.
  wire.payload = util::SharedBytes::copy_of(msg.payload);
  const util::Bytes frame = net::serialize_message(wire);
  const net::NetMessage back = net::deserialize_message(frame);
  if (back.payload.size() != msg.payload.size()) std::abort();
}

/// Zero-copy wire emulation: header bytes + payload view on the send side,
/// pooled buffer + deserialize_frame view on the receive side. The memcpy
/// into `body` stands in for the socket transfer itself, which both
/// generations pay identically.
void wire_zero(const net::NetMessage& msg, util::BufferPool& pool) {
  const util::Bytes header = net::serialize_header(msg);
  util::Bytes body = pool.acquire(header.size() + msg.payload.size());
  std::memcpy(body.data(), header.data(), header.size());
  if (!msg.payload.empty())
    std::memcpy(body.data() + header.size(), msg.payload.data(),
                msg.payload.size());
  const net::NetMessage back = net::deserialize_frame(
      util::SharedBytes::adopt_pooled(std::move(body), pool));
  if (back.payload.size() != msg.payload.size()) std::abort();
}

struct Run {
  std::string path;
  int clients = 0;
  int frames = 0;               ///< Delivered across all clients.
  double inter_frame_ms = 0.0;  ///< Mean per-client inter-frame delay.
  std::uint64_t bytes_copied = 0;
  std::uint64_t copies = 0;
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
};

Run run_path(const std::string& path, int clients, int steps, double period_s,
             std::size_t frame_bytes) {
  obs::reset_counters();
  hub::HubConfig cfg;
  cfg.client_queue_frames = 64;  // roomy: measuring copies, not drops
  hub::FrameHub hub(cfg);
  auto renderer = hub.connect_renderer();

  Run run;
  run.path = path;
  run.clients = clients;
  std::vector<std::thread> threads;
  util::Mutex mutex;
  double delay_sum = 0.0;
  int delay_count = 0;
  const bool zero = path == "zero";
  for (int k = 0; k < clients; ++k) {
    auto port = hub.connect_client();
    threads.emplace_back([port, zero, &run, &mutex, &delay_sum, &delay_count] {
      util::BufferPool pool;  // per-client, like a per-connection receiver
      util::WallTimer clock;
      double first = -1.0, last = -1.0;
      int frames = 0;
      while (auto msg = port->next()) {
        if (msg->type == net::MsgType::kShutdown) break;
        if (zero)
          wire_zero(*msg, pool);
        else
          wire_seed(*msg);
        last = clock.seconds();
        if (first < 0.0) first = last;
        ++frames;
      }
      util::LockGuard lock(mutex);
      run.frames += frames;
      if (frames > 1) {
        delay_sum += (last - first) / (frames - 1);
        ++delay_count;
      }
    });
  }

  // Paced producer: the payload buffer is created once per step and shared
  // by reference into the hub, the cache, and every client queue.
  for (int s = 0; s < steps; ++s) {
    net::NetMessage msg;
    msg.type = net::MsgType::kFrame;
    msg.frame_index = s;
    msg.codec = "raw";
    msg.payload = util::Bytes(frame_bytes, static_cast<std::uint8_t>(s));
    renderer->send(std::move(msg));
    std::this_thread::sleep_for(std::chrono::duration<double>(period_s));
  }
  net::NetMessage bye;
  bye.type = net::MsgType::kShutdown;
  renderer->send(std::move(bye));
  for (auto& t : threads) t.join();
  hub.shutdown();

  if (delay_count > 0) run.inter_frame_ms = delay_sum / delay_count * 1e3;
  run.bytes_copied = obs::counter("util.shared_bytes.copy_bytes").value();
  run.copies = obs::counter("util.shared_bytes.copies").value();
  run.pool_hits = obs::counter("util.pool.hits").value();
  run.pool_misses = obs::counter("util.pool.misses").value();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int steps = static_cast<int>(flags.get_int("steps", 40));
  const double period_s = flags.get_double("period-ms", 2.0) / 1e3;
  const auto frame_bytes =
      static_cast<std::size_t>(flags.get_int("bytes", 65536));
  const std::string json_path = flags.get("json", "");
  bench::init_observability(flags);

  bench::print_header("Ablation: zero-copy frame path",
                      "seed (copying) vs pooled scatter-gather wire path");
  std::printf("steps=%d  payload=%zu bytes  period=%.1f ms\n\n", steps,
              frame_bytes, period_s * 1e3);

  std::vector<Run> runs;
  for (const int n : {1, 8})
    for (const char* path : {"seed", "zero"})
      runs.push_back(run_path(path, n, steps, period_s, frame_bytes));

  std::printf("%-6s %8s %8s %14s %8s %12s %8s %8s\n", "path", "clients",
              "frames", "bytes-copied", "copies", "inter-frame", "hits",
              "misses");
  for (const auto& r : runs)
    std::printf("%-6s %8d %8d %14llu %8llu %9.2f ms %8llu %8llu\n",
                r.path.c_str(), r.clients, r.frames,
                static_cast<unsigned long long>(r.bytes_copied),
                static_cast<unsigned long long>(r.copies), r.inter_frame_ms,
                static_cast<unsigned long long>(r.pool_hits),
                static_cast<unsigned long long>(r.pool_misses));

  const auto find = [&](const std::string& path, int clients) -> const Run& {
    for (const auto& r : runs)
      if (r.path == path && r.clients == clients) return r;
    std::abort();
  };
  const Run& seed8 = find("seed", 8);
  const Run& zero8 = find("zero", 8);
  const Run& seed1 = find("seed", 1);
  const Run& zero1 = find("zero", 1);
  const double reduction =
      zero8.bytes_copied > 0 ? static_cast<double>(seed8.bytes_copied) /
                                   static_cast<double>(zero8.bytes_copied)
                             : 1e9;  // zero copies: report a large ratio
  const double delay_ratio = seed1.inter_frame_ms > 0.0
                                 ? zero1.inter_frame_ms / seed1.inter_frame_ms
                                 : 1.0;
  std::printf(
      "\n8-client bytes-copied reduction: %.1fx (claim: >= 2x)\n"
      "1-client inter-frame ratio (zero/seed): %.3f (claim: <= ~1)\n",
      reduction, delay_ratio);
  if (reduction < 2.0)
    std::printf("  !! zero path copies too much: %.1fx < 2x\n", reduction);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"ablation_zero_copy\",\n"
                 "  \"steps\": %d,\n  \"payload_bytes\": %zu,\n"
                 "  \"period_ms\": %.3f,\n  \"runs\": [\n",
                 steps, frame_bytes, period_s * 1e3);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const auto& r = runs[i];
      std::fprintf(
          f,
          "    {\"path\": \"%s\", \"clients\": %d, \"frames\": %d,"
          " \"bytes_copied\": %llu, \"copies\": %llu,"
          " \"inter_frame_ms\": %.4f, \"pool_hits\": %llu,"
          " \"pool_misses\": %llu}%s\n",
          r.path.c_str(), r.clients, r.frames,
          static_cast<unsigned long long>(r.bytes_copied),
          static_cast<unsigned long long>(r.copies), r.inter_frame_ms,
          static_cast<unsigned long long>(r.pool_hits),
          static_cast<unsigned long long>(r.pool_misses),
          i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"bytes_copied_reduction_8_clients\": %.2f,\n"
                 "  \"single_client_delay_ratio\": %.4f\n}\n",
                 reduction, delay_ratio);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  bench::finish_observability();
  return 0;
}
