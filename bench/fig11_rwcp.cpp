// Figure 11: overall time per frame displaying from the RWCP cluster in
// Japan to UC Davis — remote X versus the display daemon — using 64
// processors, four image sizes.
//
// Expected shape: X is unacceptable and takes roughly twice the NASA->UCD
// case; the compressed daemon path stays at a few seconds per frame or
// less even for the larger images.
#include <cstdio>

#include "bench/common.hpp"
#include "codec/image_codec.hpp"
#include "core/pipesim.hpp"
#include "util/flags.hpp"

using namespace tvviz;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  bench::print_header(
      "Figure 11 — overall time per frame, RWCP (Japan) -> UC Davis",
      "64 processors, remote X vs compression-based display daemon");

  core::PipelineConfig cfg;
  cfg.processors = static_cast<int>(flags.get_int("processors", 64));
  cfg.groups = static_cast<int>(flags.get_int("groups", 4));
  cfg.dataset = field::turbulent_jet_desc();
  cfg.steps_limit = 24;
  cfg.costs = core::StageCosts::rwcp_paper();
  cfg.codec = core::CodecProfile::paper("jpeg+lzo");

  const auto nasa = core::StageCosts::o2k_paper();

  std::printf("%-8s %-16s %-16s %-18s\n", "size", "X display",
              "display daemon", "X vs NASA link");
  for (int s : bench::paper_image_sizes()) {
    cfg.image_width = cfg.image_height = s;
    cfg.output = core::OutputMode::kXWindow;
    const auto x = core::simulate_pipeline(cfg);
    cfg.output = core::OutputMode::kDaemonCompressed;
    const auto daemon = core::simulate_pipeline(cfg);
    // Display-side per-frame time (the figure's bars).
    const double x_display = x.breakdown.transfer + x.breakdown.client;
    const double d_display = daemon.breakdown.transfer + daemon.breakdown.client;
    const double x_nasa =
        nasa.x_display.frame_seconds(static_cast<std::size_t>(s) * s * 3);
    std::printf("%4d^2   %-16s %-16s %12.1fx slower\n", s,
                bench::fmt_seconds(x_display).c_str(),
                bench::fmt_seconds(d_display).c_str(), x_display / x_nasa);
  }
  std::printf(
      "\nPaper shape: the Japan-UCD X transfer takes about twice the\n"
      "NASA-UCD case; with the daemon the average transfer is a few\n"
      "seconds per frame at most, even for the larger images.\n");
  return 0;
}
