// Ablation: depth-image warping viewer vs ship-per-frame over a
// trans-Pacific link. A deterministic virtual clock simulates the §6
// WAN scenario — the renderer produces a frame every --render-ms, each
// frame spends --rtt-ms/2 on the wire, and the viewer orbits the camera
// continuously while its display refreshes every --tick-ms:
//
//   ship-per-frame   the seed behaviour: the viewer shows the newest
//                    arrived frame as-is, so during camera motion the
//                    image only changes when a frame lands (perceived
//                    inter-frame delay = render interval) and the pose
//                    on screen lags the requested pose by the whole
//                    render + wire pipeline.
//
//   warp             the viewer forward-reprojects the last received
//                    color+depth frame to the *current* requested pose
//                    every display tick. Every warp in the run is a real
//                    render::Warper invocation against depth planes that
//                    round-tripped the ZPL1 wire codec, so the quality
//                    numbers (hole ratio, staleness) are the shipping
//                    path's, not a model.
//
// The headline metric is
//
//   perceived_delay_ratio = mean inter-update gap (ship) /
//                           mean inter-update gap (warp)
//
// held >= 5.0 by CI (tools/bench_gate.py --metric perceived_delay_ratio
// --min-value 5.0). Both gaps come from the same virtual clock, so the
// ratio is machine-independent by construction; what the real machine
// contributes is the warp-quality validation: a staleness sweep re-warps
// a held frame at +-2/5/10 degrees and the run fails outright if the
// reprojection-hole ratio at +-10 degrees exceeds the 15% bar.
//
//   ./ablation_warp [--rtt-ms 150] [--render-ms 100] [--tick-ms 10]
//                   [--duration-ms 2000] [--size 48] [--orbit-deg-s 20]
//                   [--json BENCH_warp.json]
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "codec/depth_plane.hpp"
#include "field/generators.hpp"
#include "render/camera.hpp"
#include "render/raycast.hpp"
#include "render/transfer.hpp"
#include "render/warp.hpp"
#include "util/flags.hpp"

using namespace tvviz;

namespace {

constexpr double kTau = 6.283185307179586;
constexpr double kDeg = kTau / 360.0;

struct Run {
  std::string variant;
  int frames = 0;  ///< Displayed image updates over the simulated window.
  double mean_gap_ms = 0.0;
  double mean_pose_lag_deg = 0.0;
  double mean_hole_ratio = 0.0;
  double max_hole_ratio = 0.0;
  double max_stale_deg = 0.0;
};

/// Render one 2.5D frame at `azimuth` and round-trip its depth plane
/// through the ZPL1 wire codec, exactly as the session's leader/viewer
/// pair would.
render::DepthFrame depth_frame_at(const field::VolumeF& vol,
                                  const render::TransferFunction& tf,
                                  double azimuth, int size, int step = 0) {
  const render::Camera cam(size, size, azimuth, 0.3);
  const render::PartialImage part = render::RayCaster().render(
      render::Subvolume::whole(vol), vol.dims(), cam, tf);
  render::PartialImage full(0, 0, size, size);
  for (int y = 0; y < part.height(); ++y)
    for (int x = 0; x < part.width(); ++x)
      full.at(part.x0() + x, part.y0() + y) = part.at(x, y);
  render::DepthFrame frame;
  frame.color = render::Image(size, size);
  part.splat_to(frame.color);
  frame.depth =
      codec::decode_depth_plane(codec::encode_depth_plane(render::extract_depth(full)));
  frame.camera = cam;
  frame.step = step;
  return frame;
}

double wrap_delta_deg(double a, double b) {
  double d = std::fmod(std::abs(a - b), kTau);
  if (d > kTau / 2.0) d = kTau - d;
  return d / kDeg;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int rtt_ms = static_cast<int>(flags.get_int("rtt-ms", 150));
  const int render_ms = static_cast<int>(flags.get_int("render-ms", 100));
  const int tick_ms = static_cast<int>(flags.get_int("tick-ms", 10));
  const int duration_ms = static_cast<int>(flags.get_int("duration-ms", 2000));
  const int size = static_cast<int>(flags.get_int("size", 48));
  const double orbit_deg_s = flags.get_double("orbit-deg-s", 20.0);
  const std::string json_path = flags.get("json", "");
  bench::init_observability(flags);

  bench::print_header("Ablation: depth-image warping vs ship-per-frame",
                      "interactive orbit over a simulated trans-Pacific link");
  std::printf("rtt=%dms  render=%dms  tick=%dms  window=%dms  frame=%dx%d  "
              "orbit=%.0f deg/s\n\n",
              rtt_ms, render_ms, tick_ms, duration_ms, size, size,
              orbit_deg_s);

  const auto desc = field::scaled(field::turbulent_jet_desc(), 4, 4);
  const field::VolumeF vol = field::generate(desc, 1);
  const auto tf = render::TransferFunction::fire();
  const double one_way = rtt_ms / 2.0;
  const double rate = orbit_deg_s * kDeg / 1000.0;  // rad per virtual ms
  const auto azimuth_at = [&](double t_ms) { return 0.7 + rate * t_ms; };

  // The renderer starts frame k at k*render_ms against the pose request
  // that left the viewer one_way earlier, finishes after render_ms, and
  // the frame lands at the viewer another one_way later.
  struct Arrival {
    double t_ms;
    double azimuth;
    render::DepthFrame frame;
  };
  std::vector<Arrival> arrivals;
  for (double start = 0.0; start + render_ms + one_way <= duration_ms;
       start += render_ms) {
    const double pose_t = std::max(0.0, start - one_way);
    Arrival a;
    a.t_ms = start + render_ms + one_way;
    a.azimuth = azimuth_at(pose_t);
    a.frame = depth_frame_at(vol, tf, a.azimuth, size,
                             static_cast<int>(arrivals.size()));
    arrivals.push_back(std::move(a));
  }
  std::printf("simulated %zu frame arrivals (first lands at t=%.0fms)\n\n",
              arrivals.size(), arrivals.empty() ? 0.0 : arrivals[0].t_ms);

  Run ship;
  ship.variant = "ship-per-frame";
  Run warp;
  warp.variant = "warp";
  {
    // Ship mode: the screen changes only when a frame lands.
    int shown = -1;
    double last_update = -1.0, gap_sum = 0.0, lag_sum = 0.0;
    int lag_ticks = 0;
    for (double t = 0.0; t <= duration_ms; t += tick_ms) {
      int latest = shown;
      for (std::size_t k = 0; k < arrivals.size(); ++k)
        if (arrivals[k].t_ms <= t) latest = static_cast<int>(k);
      if (latest >= 0) {
        lag_sum += wrap_delta_deg(azimuth_at(t), arrivals[latest].azimuth);
        ++lag_ticks;
      }
      if (latest != shown) {
        if (last_update >= 0.0) gap_sum += t - last_update;
        last_update = t;
        shown = latest;
        ++ship.frames;
      }
    }
    ship.mean_gap_ms = ship.frames > 1 ? gap_sum / (ship.frames - 1) : 0.0;
    ship.mean_pose_lag_deg = lag_ticks > 0 ? lag_sum / lag_ticks : 0.0;
  }
  {
    // Warp mode: every tick reprojects the newest frame to the current
    // pose, so every tick is a visual update at the requested pose.
    render::Warper warper(vol.dims());
    int held = -1;
    double last_update = -1.0, gap_sum = 0.0, hole_sum = 0.0;
    for (double t = 0.0; t <= duration_ms; t += tick_ms) {
      int latest = held;
      for (std::size_t k = 0; k < arrivals.size(); ++k)
        if (arrivals[k].t_ms <= t) latest = static_cast<int>(k);
      if (latest < 0) continue;
      if (latest != held) {
        warper.set_frame(arrivals[static_cast<std::size_t>(latest)].frame);
        held = latest;
      }
      const render::Camera target(size, size, azimuth_at(t), 0.3);
      const render::WarpResult r = warper.warp(target);
      if (last_update >= 0.0) gap_sum += t - last_update;
      last_update = t;
      ++warp.frames;
      hole_sum += r.hole_ratio;
      warp.max_hole_ratio = std::max(warp.max_hole_ratio, r.hole_ratio);
      warp.max_stale_deg = std::max(warp.max_stale_deg, r.stale_deg);
    }
    warp.mean_gap_ms = warp.frames > 1 ? gap_sum / (warp.frames - 1) : 0.0;
    warp.mean_hole_ratio = warp.frames > 0 ? hole_sum / warp.frames : 0.0;
    warp.mean_pose_lag_deg = 0.0;  // warps land exactly on the requested pose
  }

  // Staleness sweep: hold one frame and re-warp it at fixed offsets; the
  // +-10 degree points are the ISSUE's quality bar.
  struct SweepPoint {
    double stale_deg;
    double hole_ratio;
  };
  std::vector<SweepPoint> sweep;
  double hole_at_10 = 0.0;
  {
    render::Warper warper(vol.dims());
    warper.set_frame(depth_frame_at(vol, tf, 0.7, size));
    for (const double deg : {-10.0, -5.0, -2.0, 2.0, 5.0, 10.0}) {
      const render::Camera target(size, size, 0.7 + deg * kDeg, 0.3);
      const render::WarpResult r = warper.warp(target);
      sweep.push_back({deg, r.hole_ratio});
      if (std::abs(deg) == 10.0)
        hole_at_10 = std::max(hole_at_10, r.hole_ratio);
    }
  }

  const double ratio =
      warp.mean_gap_ms > 0.0 ? ship.mean_gap_ms / warp.mean_gap_ms : 0.0;

  std::printf("%-16s %8s %14s %14s %12s %12s\n", "variant", "updates",
              "mean gap (ms)", "pose lag (deg)", "mean hole", "max stale");
  for (const Run* r : {&ship, &warp})
    std::printf("%-16s %8d %14.1f %14.2f %12.4f %11.1f%s\n",
                r->variant.c_str(), r->frames, r->mean_gap_ms,
                r->mean_pose_lag_deg, r->mean_hole_ratio, r->max_stale_deg,
                "°");
  std::printf("\nstaleness sweep (held frame re-warped at fixed offsets):\n");
  for (const auto& p : sweep)
    std::printf("  %+5.1f deg  hole ratio %.4f\n", p.stale_deg, p.hole_ratio);
  std::printf("\nperceived delay ratio (ship / warp): %.2fx (claim: >= 5.0x)\n"
              "hole ratio at +-10 deg staleness: %.4f (bar: <= 0.15)\n",
              ratio, hole_at_10);

  bool failed = false;
  if (ratio < 5.0) {
    std::printf("  !! warp below the 5x perceived-delay bar: %.2fx\n", ratio);
    failed = true;
  }
  if (hole_at_10 > 0.15) {
    std::printf("  !! hole ratio at 10 deg over the 15%% bar: %.4f\n",
                hole_at_10);
    failed = true;
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"ablation_warp\",\n"
                 "  \"rtt_ms\": %d,\n  \"render_ms\": %d,\n"
                 "  \"tick_ms\": %d,\n  \"duration_ms\": %d,\n"
                 "  \"size\": %d,\n  \"orbit_deg_per_s\": %.1f,\n"
                 "  \"runs\": [\n",
                 rtt_ms, render_ms, tick_ms, duration_ms, size, orbit_deg_s);
    const Run* rs[] = {&ship, &warp};
    for (std::size_t i = 0; i < 2; ++i) {
      const Run& r = *rs[i];
      std::fprintf(f,
                   "    {\"variant\": \"%s\", \"frames\": %d,"
                   " \"mean_gap_ms\": %.2f, \"mean_pose_lag_deg\": %.3f,"
                   " \"mean_hole_ratio\": %.4f, \"max_hole_ratio\": %.4f,"
                   " \"max_stale_deg\": %.2f}%s\n",
                   r.variant.c_str(), r.frames, r.mean_gap_ms,
                   r.mean_pose_lag_deg, r.mean_hole_ratio, r.max_hole_ratio,
                   r.max_stale_deg, i + 1 < 2 ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"staleness_sweep\": [\n");
    for (std::size_t i = 0; i < sweep.size(); ++i)
      std::fprintf(f, "    {\"stale_deg\": %.1f, \"hole_ratio\": %.4f}%s\n",
                   sweep[i].stale_deg, sweep[i].hole_ratio,
                   i + 1 < sweep.size() ? "," : "");
    std::fprintf(f,
                 "  ],\n  \"perceived_delay_ratio\": %.3f,\n"
                 "  \"hole_ratio_at_10deg\": %.4f\n}\n",
                 ratio, hole_at_10);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  bench::finish_observability();
  return failed ? 1 : 0;
}
