// Figure 8: time to send one frame from NASA Ames to UC Davis via remote X
// versus the compression-based display daemon, for four image sizes.
// Compressed payloads are REAL (our ray-cast frames through our JPEG+LZO);
// the wide-area link is the calibrated NASA->UCD model.
//
// Expected shape: X grows superlinearly and is dramatically slower at large
// sizes; the compressed path stays near-flat.
#include <cstdio>

#include "bench/common.hpp"
#include "codec/image_codec.hpp"
#include "core/costs.hpp"
#include "net/link.hpp"
#include "util/flags.hpp"

using namespace tvviz;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int max_size = static_cast<int>(flags.get_int("max-size", 1024));

  bench::print_header(
      "Figure 8 — per-frame send time, NASA Ames -> UC Davis",
      "remote X (raw) vs display daemon (JPEG+LZO), measured payloads");

  const auto costs = core::StageCosts::o2k_paper();
  const net::DaemonTransportModel daemon{costs.wan};
  const auto codec = codec::make_image_codec("jpeg+lzo", 75);
  const auto profile = core::CodecProfile::paper("jpeg+lzo");

  std::printf("%-8s %-12s %-14s %-14s %-12s %-10s\n", "size", "raw bytes",
              "X display", "daemon", "compressed", "speedup");
  double prev_ratio = 0.0;
  bool gap_grows = true;
  for (int s : bench::paper_image_sizes()) {
    if (s > max_size) break;
    const auto frame = bench::render_frame(field::DatasetKind::kTurbulentJet, s);
    const std::size_t raw = static_cast<std::size_t>(s) * s * 3;
    const std::size_t compressed = codec->encode(frame).size();
    const std::size_t pixels = static_cast<std::size_t>(s) * s;

    const double t_x = costs.x_display.frame_seconds(raw);
    // Daemon path: WAN transfer of the compressed frame plus client-side
    // decompression and blit (weak SGI O2 client — paper-era constants).
    const double t_daemon = daemon.frame_seconds(compressed) +
                            profile.decompress_seconds(pixels) +
                            pixels * costs.client_display_s_per_pixel +
                            costs.display_path_overhead_s;
    const double ratio = t_x / t_daemon;
    std::printf("%4d^2   %-12s %-14s %-14s %-12s %6.1fx\n", s,
                bench::fmt_bytes(static_cast<double>(raw)).c_str(),
                bench::fmt_seconds(t_x).c_str(),
                bench::fmt_seconds(t_daemon).c_str(),
                bench::fmt_bytes(static_cast<double>(compressed)).c_str(),
                ratio);
    gap_grows &= ratio > prev_ratio;
    prev_ratio = ratio;
  }
  std::printf("\nbenefit of compression grows with image size: %s "
              "(paper: \"even more dramatic\" as size increases)\n",
              gap_grows ? "yes" : "NO");
  return 0;
}
