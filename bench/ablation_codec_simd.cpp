// Ablation: the SIMD + tile-parallel codec engine against the scalar
// double-precision reference it replaced. Encodes a 1024x1024 rendered
// frame through:
//
//   jpeg-reference   the seed pipeline (double matrix DCT, serial, one
//                    strip) kept alive as JpegCodec::encode_reference;
//   jpeg-scalar      the new engine with the SIMD dispatch pinned to the
//                    scalar tier (isolates float kernels + strip engine);
//   jpeg-simd-w1     best ISA tier, one strip (no tile parallelism);
//   jpeg-simd-w4     best ISA tier, auto strips on a 4-worker TilePool —
//                    the shipping configuration and the gated numerator.
//
// plus scalar-vs-SIMD rides for the LZ match finder, the framediff delta
// loop, and the motion-search SAD. Every variant reports MB/s of raw
// input consumed; the headline metric is
//
//   jpeg_encode_speedup = MB/s(jpeg-simd-w4) / MB/s(jpeg-reference)
//
// which the CI gate holds >= 3.0 (tools/bench_gate.py --metric
// jpeg_encode_speedup --min-value 3.0). Both sides run in this process on
// this host, so machine speed cancels.
//
//   ./ablation_codec_simd [--size 1024] [--min-seconds 0.4]
//                         [--workers 4] [--json BENCH_codec_simd.json]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "codec/byte_codec.hpp"
#include "codec/framediff.hpp"
#include "codec/image_codec.hpp"
#include "codec/jpeg.hpp"
#include "codec/lz.hpp"
#include "codec/motion.hpp"
#include "codec/tile_pool.hpp"
#include "util/flags.hpp"
#include "util/simd.hpp"
#include "util/timer.hpp"

using namespace tvviz;

namespace {

struct Run {
  std::string variant;
  std::string codec;
  int frames = 0;  ///< Iterations completed inside the timing window.
  double mb_per_s = 0.0;
  std::size_t out_bytes = 0;
};

/// Time `fn` (which consumes `raw_bytes` of input per call) until the
/// window is filled, returning input MB/s.
template <typename Fn>
Run time_variant(const std::string& variant, const std::string& codec,
                 std::size_t raw_bytes, double min_seconds, Fn&& fn) {
  Run run;
  run.variant = variant;
  run.codec = codec;
  fn();  // warm-up: page in tables, pool threads, caches
  util::WallTimer clock;
  double elapsed = 0.0;
  while (elapsed < min_seconds || run.frames < 3) {
    run.out_bytes = fn();
    ++run.frames;
    elapsed = clock.seconds();
  }
  run.mb_per_s =
      static_cast<double>(raw_bytes) * run.frames / elapsed / (1024.0 * 1024.0);
  return run;
}

util::Bytes rgb_of(const render::Image& img) {
  util::Bytes rgb;
  rgb.reserve(static_cast<std::size_t>(img.width()) * img.height() * 3);
  for (int y = 0; y < img.height(); ++y)
    for (int x = 0; x < img.width(); ++x) {
      const auto* p = img.pixel(x, y);
      rgb.insert(rgb.end(), {p[0], p[1], p[2]});
    }
  return rgb;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int size = static_cast<int>(flags.get_int("size", 1024));
  const int workers = static_cast<int>(flags.get_int("workers", 4));
  const double min_seconds = flags.get_double("min-seconds", 0.4);
  const std::string json_path = flags.get("json", "");
  bench::init_observability(flags);

  // Must land before the first TilePool::global() touch anywhere below.
  ::setenv("TVVIZ_CODEC_WORKERS", std::to_string(workers).c_str(),
           /*overwrite=*/1);

  bench::print_header("Ablation: SIMD + tile-parallel codec engine",
                      "scalar double reference vs float/SIMD strip engine");
  const auto isa = util::simd::best_available_isa();
  std::printf("frame=%dx%d  isa=%s  tile workers=%d\n\n", size, size,
              util::simd::isa_name(isa), workers);

  // Render at 256^2 (full-resolution volume) and upscale: identical image
  // content at every size without paying a single-core gigapixel raycast.
  const render::Image base =
      bench::render_frame(field::DatasetKind::kTurbulentJet, 256);
  const render::Image frame =
      size > 256 ? render::upscale(base, size / 256) : base;
  const std::size_t frame_raw =
      static_cast<std::size_t>(frame.width()) * frame.height() * 3;
  const util::Bytes frame_rgb = rgb_of(frame);

  std::vector<Run> runs;

  const codec::JpegCodec engine(75, true, 0);
  const codec::JpegCodec one_strip(75, true, 1);
  runs.push_back(time_variant("jpeg-reference", "jpeg", frame_raw, min_seconds,
                              [&] { return engine.encode_reference(frame).size(); }));
  runs.push_back(time_variant("jpeg-scalar", "jpeg", frame_raw, min_seconds, [&] {
    util::simd::ScopedIsa scoped(util::simd::Isa::kScalar);
    return engine.encode(frame).size();
  }));
  runs.push_back(time_variant("jpeg-simd-w1", "jpeg", frame_raw, min_seconds,
                              [&] { return one_strip.encode(frame).size(); }));
  runs.push_back(time_variant("jpeg-simd-w4", "jpeg", frame_raw, min_seconds,
                              [&] { return engine.encode(frame).size(); }));

  const codec::LzCodec lz(5);
  runs.push_back(time_variant("lz-scalar", "lz", frame_rgb.size(), min_seconds, [&] {
    util::simd::ScopedIsa scoped(util::simd::Isa::kScalar);
    return lz.encode(frame_rgb).size();
  }));
  runs.push_back(time_variant("lz-simd", "lz", frame_rgb.size(), min_seconds,
                              [&] { return lz.encode(frame_rgb).size(); }));

  // Framediff: time the steady-state delta frame (key frame sent once).
  const auto raw_inner = std::make_shared<codec::RawCodec>();
  runs.push_back(
      time_variant("framediff-scalar", "framediff", frame_raw, min_seconds, [&] {
        util::simd::ScopedIsa scoped(util::simd::Isa::kScalar);
        codec::FrameDiffEncoder enc(raw_inner);
        (void)enc.encode_frame(frame);
        return enc.encode_frame(frame).size();
      }));
  runs.push_back(
      time_variant("framediff-simd", "framediff", frame_raw, min_seconds, [&] {
        codec::FrameDiffEncoder enc(raw_inner);
        (void)enc.encode_frame(frame);
        return enc.encode_frame(frame).size();
      }));

  // Motion search at 256^2: the SAD loop dominates; 1024^2 would only
  // stretch the run without changing the ratio.
  codec::MotionCodecOptions mopt;
  mopt.gop = 100;
  mopt.search_range = 8;
  const std::size_t motion_raw =
      static_cast<std::size_t>(base.width()) * base.height() * 3;
  runs.push_back(time_variant("motion-scalar", "motion", motion_raw, min_seconds, [&] {
    util::simd::ScopedIsa scoped(util::simd::Isa::kScalar);
    codec::MotionEncoder enc(mopt);
    (void)enc.encode_frame(base);
    return enc.encode_frame(base).size();
  }));
  runs.push_back(time_variant("motion-simd", "motion", motion_raw, min_seconds, [&] {
    codec::MotionEncoder enc(mopt);
    (void)enc.encode_frame(base);
    return enc.encode_frame(base).size();
  }));

  std::printf("%-18s %-10s %8s %12s %12s\n", "variant", "codec", "iters",
              "MB/s", "out bytes");
  for (const auto& r : runs)
    std::printf("%-18s %-10s %8d %12.1f %12zu\n", r.variant.c_str(),
                r.codec.c_str(), r.frames, r.mb_per_s, r.out_bytes);

  const auto find = [&](const char* variant) -> const Run& {
    for (const auto& r : runs)
      if (r.variant == variant) return r;
    std::abort();
  };
  const double speedup =
      find("jpeg-simd-w4").mb_per_s / find("jpeg-reference").mb_per_s;
  const double lz_speedup = find("lz-simd").mb_per_s / find("lz-scalar").mb_per_s;
  const double motion_speedup =
      find("motion-simd").mb_per_s / find("motion-scalar").mb_per_s;
  std::printf(
      "\njpeg encode speedup (simd-w4 / reference): %.2fx (claim: >= 3.0x)\n"
      "lz match-finder speedup: %.2fx   motion search speedup: %.2fx\n",
      speedup, lz_speedup, motion_speedup);
  if (speedup < 3.0)
    std::printf("  !! engine below the 3x bar: %.2fx\n", speedup);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"ablation_codec_simd\",\n"
                 "  \"frame\": %d,\n  \"isa\": \"%s\",\n"
                 "  \"tile_workers\": %d,\n  \"runs\": [\n",
                 size, util::simd::isa_name(isa), workers);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const auto& r = runs[i];
      std::fprintf(f,
                   "    {\"variant\": \"%s\", \"codec\": \"%s\","
                   " \"frames\": %d, \"mb_per_s\": %.2f,"
                   " \"out_bytes\": %zu}%s\n",
                   r.variant.c_str(), r.codec.c_str(), r.frames, r.mb_per_s,
                   r.out_bytes, i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"jpeg_encode_speedup\": %.3f,\n"
                 "  \"lz_simd_speedup\": %.3f,\n"
                 "  \"motion_simd_speedup\": %.3f\n}\n",
                 speedup, lz_speedup, motion_speedup);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  bench::finish_observability();
  return 0;
}
