// Ablation: frame delivery under injected connection loss. A paced
// in-process renderer streams frames through a real HubTcpServer to one
// auto-reconnect TCP viewer while a seeded FaultPlan kills connections with
// a configurable per-send probability. Each loss rate is one run; rate 0 is
// the undisturbed baseline the others are compared against.
//
// Metrics per run: mean per-frame inter-arrival delay at the viewer, the
// number of recoveries (net.retry.reconnects), and the recovery latency —
// for every frame gap during which a reconnect happened, the gap minus the
// nominal pacing period (the time the fault actually cost). The claim
// under test: recovery is bounded by the retry backoff, not by a human
// noticing, so even at 2% per-send loss the stream completes with mean
// recovery latencies in the tens of milliseconds.
//
//   ./ablation_faults [--steps 60] [--period-ms 2] [--bytes 16384]
//                     [--seed 1] [--json BENCH_faults.json]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "fault/fault.hpp"
#include "hub/hub.hpp"
#include "hub/tcp_hub.hpp"
#include "net/protocol.hpp"
#include "obs/counters.hpp"
#include "util/flags.hpp"
#include "util/timer.hpp"

using namespace tvviz;

namespace {

struct Run {
  double drop_rate = 0.0;
  int steps_delivered = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t faults_injected = 0;
  double inter_frame_ms = 0.0;   ///< Mean gap between newly seen steps.
  double max_gap_ms = 0.0;       ///< Worst single gap.
  double recovery_ms = 0.0;      ///< Mean (gap - period) over reconnect gaps.
  bool complete = false;
};

Run run_rate(double drop_rate, std::uint64_t seed, int steps, double period_s,
             std::size_t frame_bytes) {
  fault::FaultPlan plan;
  plan.seed = seed;
  plan.send_drop_rate = drop_rate;
  fault::ScopedFaultPlan scoped(plan);

  static obs::Counter& reconnects_ctr = obs::counter("net.retry.reconnects");
  const auto reconnects_before = reconnects_ctr.value();

  hub::HubConfig cfg;
  cfg.cache_steps = static_cast<std::size_t>(steps);  // full resume window
  cfg.client_queue_frames = static_cast<std::size_t>(steps);
  hub::HubTcpServer server(0, cfg);

  hub::HubTcpViewer::Options options;
  options.client_id = "bench";
  options.auto_reconnect = true;
  options.retry.max_attempts = 10;
  options.retry.base_delay_ms = 2.0;
  options.retry.max_delay_ms = 50.0;
  options.retry.io_timeout_ms = 2000.0;
  options.queue_frames = static_cast<std::uint32_t>(steps);
  hub::HubTcpViewer viewer(server.port(), options);

  // Paced producer on its own thread so faults hit frames in flight.
  std::thread producer([&] {
    auto renderer = server.hub().connect_renderer();
    for (int s = 0; s < steps; ++s) {
      net::NetMessage msg;
      msg.type = net::MsgType::kFrame;
      msg.frame_index = s;
      msg.codec = "raw";
      msg.payload = util::Bytes(frame_bytes, static_cast<std::uint8_t>(s));
      renderer->send(std::move(msg));
      std::this_thread::sleep_for(std::chrono::duration<double>(period_s));
    }
  });

  Run run;
  run.drop_rate = drop_rate;
  std::set<int> seen;
  util::WallTimer clock;
  double last_arrival = -1.0;
  double gap_sum = 0.0, recovery_sum = 0.0;
  int gaps = 0, recoveries = 0;
  auto reconnects_at_last = reconnects_ctr.value();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (seen.size() < static_cast<std::size_t>(steps) &&
         std::chrono::steady_clock::now() < deadline) {
    const auto msg = viewer.next();
    if (!msg) break;  // reconnect attempts exhausted
    if (msg->type != net::MsgType::kFrame) continue;
    viewer.ack(msg->frame_index);
    if (!seen.insert(msg->frame_index).second) continue;  // resume replay
    const double now = clock.seconds();
    if (last_arrival >= 0.0) {
      const double gap = now - last_arrival;
      gap_sum += gap;
      ++gaps;
      run.max_gap_ms = std::max(run.max_gap_ms, gap * 1e3);
      const auto reconnects_now = reconnects_ctr.value();
      if (reconnects_now > reconnects_at_last) {
        // This gap contained at least one recovery; what it cost beyond
        // the nominal pacing period is the recovery latency.
        recovery_sum += std::max(0.0, gap - period_s);
        ++recoveries;
        reconnects_at_last = reconnects_now;
      }
    }
    last_arrival = now;
  }
  producer.join();
  viewer.close();
  server.shutdown();

  run.steps_delivered = static_cast<int>(seen.size());
  run.complete = run.steps_delivered == steps;
  run.reconnects = reconnects_ctr.value() - reconnects_before;
  run.faults_injected = scoped.injector().events().size();
  if (gaps > 0) run.inter_frame_ms = gap_sum / gaps * 1e3;
  if (recoveries > 0) run.recovery_ms = recovery_sum / recoveries * 1e3;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int steps = static_cast<int>(flags.get_int("steps", 60));
  const double period_s = flags.get_double("period-ms", 2.0) / 1e3;
  const auto frame_bytes =
      static_cast<std::size_t>(flags.get_int("bytes", 16384));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::string json_path = flags.get("json", "");
  bench::init_observability(flags);

  bench::print_header("Ablation: recovery under injected connection loss",
                      "auto-reconnect viewer vs per-send drop probability");
  std::printf("steps=%d  payload=%zu bytes  period=%.1f ms  seed=%llu\n\n",
              steps, frame_bytes, period_s * 1e3,
              static_cast<unsigned long long>(seed));

  std::vector<Run> runs;
  for (const double rate : {0.0, 0.005, 0.02})
    runs.push_back(run_rate(rate, seed, steps, period_s, frame_bytes));

  std::printf("%-10s %8s %10s %8s %12s %12s %12s %9s\n", "drop-rate", "steps",
              "reconnects", "faults", "inter-frame", "max-gap", "recovery",
              "complete");
  for (const auto& r : runs)
    std::printf("%-10.3f %8d %10llu %8llu %9.2f ms %9.2f ms %9.2f ms %9s\n",
                r.drop_rate, r.steps_delivered,
                static_cast<unsigned long long>(r.reconnects),
                static_cast<unsigned long long>(r.faults_injected),
                r.inter_frame_ms, r.max_gap_ms, r.recovery_ms,
                r.complete ? "yes" : "NO");

  bool all_complete = true;
  for (const auto& r : runs) all_complete = all_complete && r.complete;
  std::printf("\nall rates delivered every step: %s\n",
              all_complete ? "yes" : "NO");

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"ablation_faults\",\n"
                 "  \"steps\": %d,\n  \"payload_bytes\": %zu,\n"
                 "  \"period_ms\": %.3f,\n  \"seed\": %llu,\n  \"runs\": [\n",
                 steps, frame_bytes, period_s * 1e3,
                 static_cast<unsigned long long>(seed));
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const auto& r = runs[i];
      std::fprintf(
          f,
          "    {\"drop_rate\": %.4f, \"steps_delivered\": %d,"
          " \"reconnects\": %llu, \"faults_injected\": %llu,"
          " \"inter_frame_ms\": %.4f, \"max_gap_ms\": %.4f,"
          " \"recovery_ms\": %.4f, \"complete\": %s}%s\n",
          r.drop_rate, r.steps_delivered,
          static_cast<unsigned long long>(r.reconnects),
          static_cast<unsigned long long>(r.faults_injected),
          r.inter_frame_ms, r.max_gap_ms, r.recovery_ms,
          r.complete ? "true" : "false", i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  bench::finish_observability();
  return all_complete ? 0 : 1;
}
