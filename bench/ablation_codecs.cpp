// Ablation: the speed/ratio frontier of every codec in the library,
// measured with google-benchmark on a real rendered frame. This is the
// §4.2 selection argument in numbers: LZO fast but modest, BZIP tighter
// but slower, JPEG (lossy) dominating both, chains adding a little more.
#include <benchmark/benchmark.h>

#include "bench/common.hpp"
#include "codec/image_codec.hpp"

using namespace tvviz;

namespace {

const render::Image& shared_frame() {
  static const render::Image frame =
      bench::render_frame(field::DatasetKind::kTurbulentJet, 256);
  return frame;
}

void BM_Encode(benchmark::State& state, const char* name) {
  const auto codec = codec::make_image_codec(name, 75);
  const auto& frame = shared_frame();
  std::size_t out_bytes = 0;
  for (auto _ : state) {
    auto packed = codec->encode(frame);
    out_bytes = packed.size();
    benchmark::DoNotOptimize(packed);
  }
  state.counters["bytes"] = static_cast<double>(out_bytes);
  state.counters["ratio"] =
      static_cast<double>(frame.width()) * frame.height() * 3 /
      static_cast<double>(out_bytes);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          frame.width() * frame.height() * 3);
}

void BM_Decode(benchmark::State& state, const char* name) {
  const auto codec = codec::make_image_codec(name, 75);
  const auto packed = codec->encode(shared_frame());
  for (auto _ : state) {
    auto img = codec->decode(packed);
    benchmark::DoNotOptimize(img);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          shared_frame().width() * shared_frame().height() * 3);
}

}  // namespace

BENCHMARK_CAPTURE(BM_Encode, raw, "raw");
BENCHMARK_CAPTURE(BM_Encode, rle, "rle");
BENCHMARK_CAPTURE(BM_Encode, lzo, "lzo");
BENCHMARK_CAPTURE(BM_Encode, bzip, "bzip");
BENCHMARK_CAPTURE(BM_Encode, jpeg, "jpeg");
BENCHMARK_CAPTURE(BM_Encode, jpeg_lzo, "jpeg+lzo");
BENCHMARK_CAPTURE(BM_Encode, jpeg_bzip, "jpeg+bzip");
BENCHMARK_CAPTURE(BM_Decode, raw, "raw");
BENCHMARK_CAPTURE(BM_Decode, rle, "rle");
BENCHMARK_CAPTURE(BM_Decode, lzo, "lzo");
BENCHMARK_CAPTURE(BM_Decode, bzip, "bzip");
BENCHMARK_CAPTURE(BM_Decode, jpeg, "jpeg");
BENCHMARK_CAPTURE(BM_Decode, jpeg_lzo, "jpeg+lzo");
BENCHMARK_CAPTURE(BM_Decode, jpeg_bzip, "jpeg+bzip");

BENCHMARK_MAIN();
