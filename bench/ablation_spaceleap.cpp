// Ablation (§7.1 preprocessing "hints to the renderer"): min-max block
// space leaping in the ray caster. Real measurement: samples evaluated and
// wall time per frame with and without leaping, across the three datasets.
// The image is bit-identical either way (skipped blocks classify to zero
// opacity); only the cost changes — and it changes most for sparse data.
#include <cstdio>

#include "bench/common.hpp"
#include "field/generators.hpp"
#include "render/raycast.hpp"
#include "util/flags.hpp"
#include "util/timer.hpp"

using namespace tvviz;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int size = static_cast<int>(flags.get_int("size", 256));

  bench::print_header(
      "Ablation — min-max space leaping in the ray caster (§7.1)",
      "per-frame samples and wall time, with/without leaping");

  struct Case {
    field::DatasetKind kind;
    int scale;
  };
  const Case cases[] = {{field::DatasetKind::kTurbulentJet, 1},
                        {field::DatasetKind::kTurbulentVortex, 1},
                        {field::DatasetKind::kShockMixing, 4}};

  std::printf("%-18s %-12s %-14s %-14s %-10s %-10s\n", "dataset", "coverage",
              "plain", "leaping", "samples", "identical");
  for (const auto& c : cases) {
    field::DatasetDesc desc;
    switch (c.kind) {
      case field::DatasetKind::kTurbulentJet:
        desc = field::turbulent_jet_desc();
        break;
      case field::DatasetKind::kTurbulentVortex:
        desc = field::turbulent_vortex_desc();
        break;
      case field::DatasetKind::kShockMixing:
        desc = field::scaled(field::shock_mixing_desc(), c.scale, 265);
        break;
    }
    const auto volume = field::generate(desc, desc.steps / 2);
    const auto tf = bench::colormap_for(c.kind);
    const render::Camera camera(size, size);
    render::RayCaster caster;

    util::WallTimer t_plain;
    const auto plain = caster.render_full(volume, camera, tf, false);
    const double plain_s = t_plain.seconds();
    const auto samples_plain = caster.last_sample_count();

    util::WallTimer t_leap;
    const auto leap = caster.render_full(volume, camera, tf, true);
    const double leap_s = t_leap.seconds();
    const auto samples_leap = caster.last_sample_count();

    std::printf("%-18s %10.1f%% %-14s %-14s %9.2fx %-10s\n",
                field::dataset_name(c.kind), 100.0 * volume.coverage(0.1f),
                bench::fmt_seconds(plain_s).c_str(),
                bench::fmt_seconds(leap_s).c_str(),
                static_cast<double>(samples_plain) /
                    static_cast<double>(std::max<std::size_t>(1, samples_leap)),
                plain == leap ? "yes" : "NO");
  }
  std::printf(
      "\nShape: leaping pays off in inverse proportion to coverage — the\n"
      "sparse jet skips most of its samples, the dense vortex almost none.\n"
      "Output images are bit-identical (the 'identical' column).\n");
  return 0;
}
