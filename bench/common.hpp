// Shared helpers for the benchmark harnesses that regenerate the paper's
// tables and figures.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "field/generators.hpp"
#include "render/camera.hpp"
#include "render/image.hpp"
#include "render/raycast.hpp"
#include "render/transfer.hpp"
#include "util/flags.hpp"

namespace tvviz::bench {

/// The four image sizes the paper evaluates (Tables 1-2, Figures 8-9, 11).
inline const std::vector<int>& paper_image_sizes() {
  static const std::vector<int> sizes = {128, 256, 512, 1024};
  return sizes;
}

/// Render one representative frame of a dataset at `size`^2 pixels.
/// The full-resolution volume is used so image content (and therefore
/// compressed size) matches the paper's workload; `step_fraction` picks the
/// point in the sequence (mid-run by default: developed structures).
render::Image render_frame(field::DatasetKind kind, int size,
                           double step_fraction = 0.5);

/// The per-dataset default transfer function.
render::TransferFunction colormap_for(field::DatasetKind kind);

/// Print a horizontal rule and a centered title.
void print_header(const std::string& title, const std::string& subtitle);

/// Human-readable seconds (ms below 1 s).
std::string fmt_seconds(double s);

/// Thousands-separated byte count.
std::string fmt_bytes(double bytes);

/// Observability plumbing shared by every harness: `--trace-out <file>`
/// turns on span recording and arranges a Chrome trace_event JSON dump
/// (loadable in Perfetto / chrome://tracing); `--counters-json <file>`
/// arranges a dump of the counter registry. Call init before the workload
/// and finish after it.
void init_observability(const util::Flags& flags);
void finish_observability();

}  // namespace tvviz::bench
