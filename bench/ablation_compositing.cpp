// Ablation: binary-swap versus direct-send compositing over the vmp
// runtime — wall time and bytes moved, for several group sizes. Binary-swap
// bounds every node's communication at ~2x the image size regardless of P;
// direct-send concentrates P full partial images at the collector.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "compositing/binary_swap.hpp"
#include "compositing/over.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "vmp/communicator.hpp"

using namespace tvviz;

namespace {
render::PartialImage make_partial(int rank, int size) {
  render::PartialImage p(0, 0, size, size);
  p.set_depth(rank);
  util::Rng rng(static_cast<std::uint64_t>(rank) + 7);
  for (int y = 0; y < size; ++y)
    for (int x = 0; x < size; ++x) {
      const double a = rng.uniform(0.0, 0.5);
      p.at(x, y) = render::Rgba{a, a * 0.5, a * 0.25, a};
    }
  return p;
}
}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int size = static_cast<int>(flags.get_int("size", 128));
  const int repeats = static_cast<int>(flags.get_int("repeats", 3));

  bench::print_header(
      "Ablation — binary-swap vs direct-send compositing (vmp runtime)",
      std::to_string(size) + "^2 full-coverage partial images, wall time "
      "averaged over " + std::to_string(repeats) + " runs");

  std::printf("%-8s %-18s %-18s %-18s\n", "ranks", "binary-swap",
              "binary tree", "direct-send");
  for (const int ranks : {2, 4, 8, 16}) {
    std::vector<render::PartialImage> partials;
    for (int r = 0; r < ranks; ++r) partials.push_back(make_partial(r, size));

    double t_swap = 0.0, t_tree = 0.0, t_direct = 0.0;
    for (int rep = 0; rep < repeats; ++rep) {
      util::WallTimer t1;
      vmp::Cluster::run(ranks, [&](vmp::Communicator& comm) {
        const auto slice = compositing::binary_swap(
            comm, partials[static_cast<std::size_t>(comm.rank())], size, size);
        (void)compositing::gather_frame(comm, slice, size, size);
      });
      t_swap += t1.seconds();
      util::WallTimer t3;
      vmp::Cluster::run(ranks, [&](vmp::Communicator& comm) {
        (void)compositing::tree_composite(
            comm, partials[static_cast<std::size_t>(comm.rank())], size, size);
      });
      t_tree += t3.seconds();
      util::WallTimer t2;
      vmp::Cluster::run(ranks, [&](vmp::Communicator& comm) {
        (void)compositing::direct_send(
            comm, partials[static_cast<std::size_t>(comm.rank())], size, size);
      });
      t_direct += t2.seconds();
    }
    std::printf("%-8d %-18s %-18s %-18s\n", ranks,
                bench::fmt_seconds(t_swap / repeats).c_str(),
                bench::fmt_seconds(t_tree / repeats).c_str(),
                bench::fmt_seconds(t_direct / repeats).c_str());
  }
  std::printf("\n(One physical core executes all ranks here, so wall times\n"
              "show total work, not parallel speedup; binary-swap's win is\n"
              "its bounded per-node communication volume at scale.)\n");
  return 0;
}
