// Ablation: load-balanced slab decomposition. The cost model's
// render-imbalance term (the left side of the Figure 6 U-curve) comes from
// uneven work across a group's nodes; weighting slab boundaries by a probe
// of the visible-work distribution flattens it. REAL measurement: per-node
// sample counts and the group-critical-path time (max node) for even vs
// weighted slabs.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "field/decompose.hpp"
#include "field/preview.hpp"
#include "render/raycast.hpp"
#include "util/flags.hpp"
#include "util/timer.hpp"

using namespace tvviz;

namespace {
struct GroupRun {
  double max_seconds = 0.0;
  double sum_seconds = 0.0;
  std::size_t max_samples = 0;
  std::size_t sum_samples = 0;
};

GroupRun run_group(const field::DatasetDesc& desc, const field::VolumeF&,
                   const std::vector<field::Box>& boxes, int size,
                   const render::TransferFunction& tf) {
  GroupRun out;
  render::RayCaster caster;
  const render::Camera camera(size, size);
  for (const auto& box : boxes) {
    render::Subvolume sub;
    sub.storage_box = field::with_ghost(box, desc.dims, 1);
    sub.data = field::generate_box(desc, desc.steps / 2, sub.storage_box);
    sub.render_box = box;
    sub.attach_skipper(tf);
    util::WallTimer t;
    (void)caster.render(sub, desc.dims, camera, tf);
    const double s = t.seconds();
    out.max_seconds = std::max(out.max_seconds, s);
    out.sum_seconds += s;
    out.max_samples = std::max(out.max_samples, caster.last_sample_count());
    out.sum_samples += caster.last_sample_count();
  }
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int size = static_cast<int>(flags.get_int("size", 256));

  bench::print_header(
      "Ablation — load-balanced slab decomposition",
      "turbulent jet, per-node work with even vs weighted boundaries");

  const auto desc = field::turbulent_jet_desc();
  const auto volume = field::generate(desc, desc.steps / 2);
  const auto tf = bench::colormap_for(field::DatasetKind::kTurbulentJet);

  std::printf("%-8s %-22s %-22s %-12s\n", "nodes", "even (crit/avg time)",
              "balanced (crit/avg)", "crit. gain");
  for (const int nodes : {2, 4, 8, 16}) {
    const auto even = field::decompose_slabs(desc.dims, nodes, 2);
    const auto weights = field::estimate_plane_weights(
        desc, desc.steps / 2, 2,
        [&](float v) { return tf.sample(v).alpha > 0.0; }, 64);
    const auto balanced =
        field::decompose_slabs_weighted(desc.dims, nodes, 2, weights);

    const GroupRun e = run_group(desc, volume, even, size, tf);
    const GroupRun b = run_group(desc, volume, balanced, size, tf);
    std::printf("%-8d %9s / %-9s %9s / %-9s %9.2fx\n", nodes,
                bench::fmt_seconds(e.max_seconds).c_str(),
                bench::fmt_seconds(e.sum_seconds / nodes).c_str(),
                bench::fmt_seconds(b.max_seconds).c_str(),
                bench::fmt_seconds(b.sum_seconds / nodes).c_str(),
                e.max_seconds / b.max_seconds);
  }
  std::printf(
      "\nShape: the group's frame time is its slowest node (critical path).\n"
      "Weighted boundaries pull the critical path toward the average —\n"
      "directly attacking the imbalance overhead the Figure 6 model charges\n"
      "against small partition counts.\n");
  return 0;
}
