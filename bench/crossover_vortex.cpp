// §6 selective test, turbulent-vortex data set: its frames carry more pixel
// coverage and compress worse than the jet's, so image transport/display
// overtakes rendering — the paper measured 0.325 s transport vs 0.178 s
// rendering per 512^2 frame on the heavily-parallel RWCP configuration.
//
// Reproduced here with REAL measurements of the dataset-dependent parts:
//   (1) vortex frames compress several times worse than jet frames
//       (real renders through our real codecs);
//   (2) our own ray caster renders the dense vortex *cheaper* per covered
//       pixel thanks to early ray termination (dense media saturate rays);
//   (3) at the paper's measured render rate, our measured transport time
//       exceeds rendering — the §6 crossover.
#include <cstdio>

#include "bench/common.hpp"
#include "codec/image_codec.hpp"
#include "core/costs.hpp"
#include "field/generators.hpp"
#include "render/raycast.hpp"
#include "util/flags.hpp"
#include "util/timer.hpp"

using namespace tvviz;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int size = static_cast<int>(flags.get_int("size", 512));

  bench::print_header(
      "§6 crossover — turbulent vortex: transport overtakes rendering",
      "real compressed sizes and real relative render costs");

  // (1) Compression disadvantage of the dense dataset.
  const auto codec = codec::make_image_codec("jpeg+lzo", 75);
  const auto jet = bench::render_frame(field::DatasetKind::kTurbulentJet, size);
  const auto vortex =
      bench::render_frame(field::DatasetKind::kTurbulentVortex, size);
  const std::size_t jet_bytes = codec->encode(jet).size();
  const std::size_t vortex_bytes = codec->encode(vortex).size();
  std::printf("compressed %d^2 frame:  jet %s bytes, vortex %s bytes "
              "(%.1fx worse — more pixel coverage)\n",
              size, bench::fmt_bytes(static_cast<double>(jet_bytes)).c_str(),
              bench::fmt_bytes(static_cast<double>(vortex_bytes)).c_str(),
              static_cast<double>(vortex_bytes) / jet_bytes);

  // (2) Real relative render cost (early termination in dense media).
  const auto jet_desc = field::scaled(field::turbulent_jet_desc(), 2, 2);
  const auto vortex_desc = field::scaled(field::turbulent_vortex_desc(), 2, 2);
  render::RayCaster caster;
  const render::Camera cam(256, 256);
  util::WallTimer t_jet;
  (void)caster.render_full(field::generate(jet_desc, 1), cam,
                           render::TransferFunction::fire());
  const double jet_render = t_jet.seconds();
  util::WallTimer t_vortex;
  (void)caster.render_full(field::generate(vortex_desc, 1), cam,
                           render::TransferFunction::dense_cool_warm());
  const double vortex_render = t_vortex.seconds();
  std::printf("relative render cost (our caster, same size): vortex/jet = "
              "%.2f\n", vortex_render / jet_render);

  // (3) The crossover at the paper's operating point: the paper measured a
  // 0.178 s/frame vortex render on the parallel machine; transport/display
  // of OUR measured vortex payload over the calibrated WAN:
  const auto costs = core::StageCosts::rwcp_paper();
  const auto profile = core::CodecProfile::paper("jpeg+lzo");
  const std::size_t pixels = static_cast<std::size_t>(size) * size;
  const double t_transport = costs.wan.transfer_seconds(vortex_bytes) +
                             profile.decompress_seconds(pixels) +
                             pixels * costs.client_display_s_per_pixel;
  const double paper_render = 0.178;
  std::printf("\ntransport + display of measured payload: %s "
              "(paper: 0.325 s)\n",
              bench::fmt_seconds(t_transport).c_str());
  std::printf("paper's measured render rate:            %s\n",
              bench::fmt_seconds(paper_render).c_str());
  std::printf("\ntransport exceeds rendering at that rate: %s "
              "(paper: yes — \"a more effective\n"
              "compression mechanism is needed eventually\")\n",
              t_transport > paper_render ? "yes" : "NO");

  // For contrast: the jet payload at the same point stays under it.
  const double t_jet_transport = costs.wan.transfer_seconds(jet_bytes) +
                                 profile.decompress_seconds(pixels) +
                                 pixels * costs.client_display_s_per_pixel;
  std::printf("\n(jet payload transport at the same point: %s — the sparse\n"
              "dataset does NOT hit the crossover; the dense one does.)\n",
              bench::fmt_seconds(t_jet_transport).c_str());
  return 0;
}
