#include "bench/common.hpp"

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace tvviz::bench {

namespace {
std::string g_trace_out;
std::string g_counters_out;
}  // namespace

void init_observability(const util::Flags& flags) {
  g_trace_out = flags.get("trace-out", "");
  g_counters_out = flags.get("counters-json", "");
  if (!g_trace_out.empty()) obs::enable_tracing(true);
}

void finish_observability() {
  if (!g_trace_out.empty()) {
    if (obs::write_chrome_trace_file(g_trace_out))
      std::printf("\ntrace written to %s\n", g_trace_out.c_str());
    else
      std::fprintf(stderr, "failed to write trace to %s\n",
                   g_trace_out.c_str());
  }
  if (!g_counters_out.empty()) {
    if (obs::write_counters_json_file(g_counters_out))
      std::printf("counters written to %s\n", g_counters_out.c_str());
    else
      std::fprintf(stderr, "failed to write counters to %s\n",
                   g_counters_out.c_str());
  }
}

render::Image render_frame(field::DatasetKind kind, int size,
                           double step_fraction) {
  field::DatasetDesc desc;
  switch (kind) {
    case field::DatasetKind::kTurbulentJet:
      desc = field::turbulent_jet_desc();
      break;
    case field::DatasetKind::kTurbulentVortex:
      desc = field::turbulent_vortex_desc();
      break;
    case field::DatasetKind::kShockMixing:
      // Render the mixing set at quarter resolution: image content is
      // equivalent for compression purposes and generation stays fast.
      desc = field::scaled(field::shock_mixing_desc(), 4, 265);
      break;
  }
  const int step = static_cast<int>(step_fraction * (desc.steps - 1));
  const field::VolumeF vol = field::generate(desc, step);
  render::RayCaster caster;
  return caster.render_full(vol, render::Camera(size, size),
                            colormap_for(kind));
}

render::TransferFunction colormap_for(field::DatasetKind kind) {
  switch (kind) {
    case field::DatasetKind::kTurbulentVortex:
      return render::TransferFunction::dense_cool_warm();
    case field::DatasetKind::kShockMixing:
      return render::TransferFunction::shock();
    default:
      return render::TransferFunction::fire();
  }
}

void print_header(const std::string& title, const std::string& subtitle) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  if (!subtitle.empty()) std::printf("%s\n", subtitle.c_str());
  std::printf("============================================================\n");
}

std::string fmt_seconds(double s) {
  char buf[64];
  if (s < 1.0)
    std::snprintf(buf, sizeof buf, "%.1f ms", s * 1e3);
  else
    std::snprintf(buf, sizeof buf, "%.2f s", s);
  return buf;
}

std::string fmt_bytes(double bytes) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.0f", bytes);
  std::string digits = buf;
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.insert(out.begin(), ',');
    out.insert(out.begin(), *it);
    ++count;
  }
  return out;
}

}  // namespace tvviz::bench
