// Table 2: actual frame rates (frames per second) from NASA Ames to UC
// Davis, X-Window versus the compression-based display mechanism, for four
// image sizes. Display-path rates (transfer + client work), with real
// compressed payload sizes from our codecs.
//
// Paper values: X = 7.7 / 0.5 / 0.1 / 0.03 fps; compression = 9 / 5.6 /
// 2.4 / 0.7 fps. The shape to reproduce: X is only competitive at 128^2
// and collapses with size; compression degrades gently (client-bound).
#include <cstdio>

#include "bench/common.hpp"
#include "codec/image_codec.hpp"
#include "core/costs.hpp"
#include "util/flags.hpp"

using namespace tvviz;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int max_size = static_cast<int>(flags.get_int("max-size", 1024));
  bench::init_observability(flags);

  bench::print_header("Table 2 — actual frame rates NASA Ames -> UC Davis "
                      "(frames/second)",
                      "display-path rates; real compressed payloads");

  const double paper_x[] = {7.7, 0.5, 0.1, 0.03};
  const double paper_comp[] = {9.0, 5.6, 2.4, 0.7};

  const auto costs = core::StageCosts::o2k_paper();
  const auto codec = codec::make_image_codec("jpeg+lzo", 75);
  const auto profile = core::CodecProfile::paper("jpeg+lzo");

  std::printf("%-12s %10s %10s %14s %14s\n", "method\\size", "ours",
              "(paper)", "ours", "(paper)");
  std::printf("%-12s %25s %29s\n", "", "X Window", "Compression");
  int idx = 0;
  bool crossover_ok = true;
  for (int s : bench::paper_image_sizes()) {
    if (s > max_size) break;
    const auto frame = bench::render_frame(field::DatasetKind::kTurbulentJet, s);
    const std::size_t pixels = static_cast<std::size_t>(s) * s;
    const std::size_t raw = pixels * 3;
    const std::size_t compressed = codec->encode(frame).size();

    const double blit = pixels * costs.client_display_s_per_pixel +
                        costs.display_path_overhead_s;
    const double fps_x = 1.0 / (costs.x_display.frame_seconds(raw) + blit);
    const double fps_comp =
        1.0 / (costs.wan.transfer_seconds(compressed) +
               profile.decompress_seconds(pixels) + blit);
    std::printf("%4d^2     %10.2f %10.2f %14.2f %14.2f\n", s, fps_x,
                paper_x[idx], fps_comp, paper_comp[idx]);
    if (s >= 256) crossover_ok &= fps_comp > 2.0 * fps_x;
    ++idx;
  }
  std::printf("\ncompression >= 2x X rate for every size >= 256^2: %s "
              "(paper shape)\n",
              crossover_ok ? "yes" : "NO");
  bench::finish_observability();
  return 0;
}
