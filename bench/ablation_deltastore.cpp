// Ablation (§2.1): differential time-step storage. Shen & Johnson reduced
// storage ~90% by exploiting temporal coherence; this bench measures our
// DeltaVolumeStore against plain raw files on a real generated sequence,
// in bit-exact float and visually-lossless 8-bit modes.
#include <cstdio>
#include <filesystem>

#include "bench/common.hpp"
#include "field/delta_store.hpp"
#include "field/store.hpp"
#include "util/flags.hpp"
#include "util/timer.hpp"

using namespace tvviz;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int steps = static_cast<int>(flags.get_int("steps", 16));
  const int scale = static_cast<int>(flags.get_int("scale", 2));

  bench::print_header(
      "Ablation — differential time-step storage (§2.1)",
      "turbulent jet, " + std::to_string(steps) + " steps at 1/" +
          std::to_string(scale) + " scale");

  const auto desc = field::scaled(field::turbulent_jet_desc(), scale, steps);
  const auto base = std::filesystem::temp_directory_path() /
                    ("tvviz_deltabench_" + std::to_string(::getpid()));
  std::filesystem::remove_all(base);

  const double raw_mb =
      static_cast<double>(desc.total_bytes()) / 1e6;
  std::printf("%-26s %12.1f MB  (1.00x)\n", "raw float steps", raw_mb);

  {
    util::WallTimer t;
    field::DeltaVolumeStore store(base / "float", 16);
    const auto [raw, stored] = store.materialize(desc);
    std::printf("%-26s %12.1f MB  (%.2fx)  write %.1f s\n",
                "delta (bit-exact float)", stored / 1e6,
                static_cast<double>(raw) / stored, t.seconds());
    // Read-back cost for a sequential sweep.
    util::WallTimer tr;
    field::DeltaVolumeStore reader(base / "float", 16);
    for (int s = 0; s < desc.steps; ++s) (void)reader.read(s);
    std::printf("%-26s sequential read-back %.1f s\n", "", tr.seconds());
  }
  {
    util::WallTimer t;
    field::DeltaVolumeStore store(base / "q8", 16, 5,
                                  field::DeltaVolumeStore::Precision::kQuantized8);
    const auto [raw, stored] = store.materialize(desc);
    std::printf("%-26s %12.1f MB  (%.2fx)  write %.1f s\n",
                "delta (8-bit quantized)", stored / 1e6,
                static_cast<double>(raw) / stored, t.seconds());
  }
  std::filesystem::remove_all(base);

  std::printf(
      "\nShape: temporal deltas + quantization land in the §2.1 ~90%%\n"
      "storage-reduction regime, shrinking both the mass-storage footprint\n"
      "and the bytes through the paper's shared sequential input channel.\n");
  return 0;
}
