// Ablation (§7.1 future work): frame-differencing (Crockett-style temporal
// coherence) as a lossless alternative to per-frame JPEG. Measures bytes
// per frame over a real animation sequence for: raw, per-frame LZO,
// frame-diff+LZO, per-frame JPEG+LZO (lossy).
#include <cstdio>

#include "bench/common.hpp"
#include "codec/framediff.hpp"
#include "codec/image_codec.hpp"
#include "codec/lz.hpp"
#include "field/generators.hpp"
#include "render/raycast.hpp"
#include "util/flags.hpp"

using namespace tvviz;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int steps = static_cast<int>(flags.get_int("steps", 10));
  const int image = static_cast<int>(flags.get_int("image", 256));

  bench::print_header(
      "Ablation — frame differencing vs per-frame compression (§7.1)",
      std::to_string(steps) + "-frame jet animation at " +
          std::to_string(image) + "^2");

  // Consecutive steps of the full 150-step sequence: temporal coherence is
  // a property of the dataset's native cadence, not of a subsampled one.
  auto desc = field::scaled(field::turbulent_jet_desc(), 2, 150);
  render::RayCaster caster;
  const render::Camera camera(image, image);
  const auto tf = render::TransferFunction::fire();

  std::vector<render::Image> frames;
  const int first = 70;
  for (int s = first; s < first + steps; ++s)
    frames.push_back(caster.render_full(field::generate(desc, s), camera, tf));

  const auto lzo = codec::make_image_codec("lzo");
  const auto jpeg_lzo = codec::make_image_codec("jpeg+lzo", 75);
  codec::FrameDiffEncoder diff(std::make_shared<codec::LzCodec>());

  std::size_t total_raw = 0, total_lzo = 0, total_diff = 0, total_jpeg = 0;
  for (const auto& frame : frames) {
    total_raw += static_cast<std::size_t>(frame.width()) * frame.height() * 3;
    total_lzo += lzo->encode(frame).size();
    total_diff += diff.encode_frame(frame).size();
    total_jpeg += jpeg_lzo->encode(frame).size();
  }

  const auto row = [&](const char* name, std::size_t total, bool lossless) {
    std::printf("%-24s %12s bytes/frame   %6.1fx vs raw   %s\n", name,
                bench::fmt_bytes(static_cast<double>(total) / steps).c_str(),
                static_cast<double>(total_raw) / static_cast<double>(total),
                lossless ? "lossless" : "lossy");
  };
  row("raw", total_raw, true);
  row("per-frame LZO", total_lzo, true);
  row("frame-diff + LZO", total_diff, true);
  row("per-frame JPEG+LZO", total_jpeg, false);

  std::printf(
      "\nShape: temporal differencing beats independent lossless coding by\n"
      "exploiting frame coherence (§7.1), but the lossy JPEG path is still\n"
      "far smaller — hence the paper's choice, with frame differencing\n"
      "noted as the upgrade path for lossless delivery.\n");
  return 0;
}
