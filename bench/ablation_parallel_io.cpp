// Ablation (§7.1 future work): "Parallel I/O, if available, can be
// incorporated into the pipeline rendering process quite straightforwardly,
// and would improve the overall system performance." Sweeps the number of
// I/O servers a time step is striped across and reports the pipeline's
// overall time and disk pressure at the input-bound operating points.
#include <cstdio>

#include "bench/common.hpp"
#include "core/pipesim.hpp"
#include "util/flags.hpp"

using namespace tvviz;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int p = static_cast<int>(flags.get_int("processors", 32));

  bench::print_header(
      "Ablation — §7.1 parallel I/O: striping time steps across K servers",
      "turbulent jet, 128 steps, 256^2, P = " + std::to_string(p) +
          " (RWCP costs)");

  core::PipelineConfig cfg;
  cfg.processors = p;
  cfg.dataset = field::turbulent_jet_desc();
  cfg.steps_limit = 128;
  cfg.image_width = cfg.image_height = 256;
  cfg.costs = core::StageCosts::rwcp_paper();
  cfg.codec = core::CodecProfile::paper("jpeg+lzo");

  std::printf("%-12s", "servers\\L");
  for (int l = 1; l <= p; l *= 2) std::printf(" %8s L=%-3d", "", l);
  std::printf("\n");
  double base_best = 0.0;
  for (const int servers : {1, 2, 4, 8}) {
    cfg.io_servers = servers;
    std::printf("K = %-8d", servers);
    double best = 1e300;
    for (int l = 1; l <= p; l *= 2) {
      cfg.groups = l;
      const auto r = core::simulate_pipeline(cfg);
      best = std::min(best, r.metrics.overall_time);
      std::printf(" %9.1f s   ", r.metrics.overall_time);
    }
    if (servers == 1) base_best = best;
    std::printf("  | best %.1f s (%.0f%% of sequential-I/O best)\n", best,
                100.0 * best / base_best);
  }
  std::printf(
      "\nShape: striping relieves the shared input channel, flattening the\n"
      "right side of the Figure 6 U-curve (more partitions stay usable) and\n"
      "improving the best overall time — the §7.1 prediction.\n");
  return 0;
}
