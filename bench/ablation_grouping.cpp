// Ablation (§6 suggestion): the hybrid sub-image approach — combine a small
// number of binary-swap slices into larger sub-images before compression,
// then compress those groups in parallel. Sweeps the group size from
// "every node ships its own slice" to "one assembled frame" and reports
// total compressed bytes and client decode time (REAL codec runs).
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "codec/image_codec.hpp"
#include "compositing/collective_compress.hpp"
#include "util/flags.hpp"
#include "util/timer.hpp"
#include "vmp/communicator.hpp"

using namespace tvviz;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int size = static_cast<int>(flags.get_int("size", 512));
  const int nodes = static_cast<int>(flags.get_int("nodes", 64));
  const int repeats = static_cast<int>(flags.get_int("repeats", 5));

  bench::print_header(
      "Ablation — hybrid sub-image grouping before compression (§6)",
      std::to_string(nodes) + " slices of a " + std::to_string(size) +
          "^2 frame; group k slices -> compress -> decode");

  const auto frame = bench::render_frame(field::DatasetKind::kTurbulentJet, size);
  const auto codec = codec::make_image_codec("jpeg+lzo", 75);

  std::printf("%-18s %-10s %-14s %-14s\n", "slices per piece", "pieces",
              "total bytes", "decode time");
  for (int group = 1; group <= nodes; group *= 2) {
    const int pieces = nodes / group;
    const int rows_per_piece = size / pieces;
    std::vector<util::Bytes> encoded;
    for (int piece = 0; piece < pieces; ++piece) {
      const int row0 = piece * rows_per_piece;
      const int rows = piece == pieces - 1 ? size - row0 : rows_per_piece;
      render::Image strip(size, rows);
      for (int y = 0; y < rows; ++y)
        for (int x = 0; x < size; ++x) {
          const auto* p = frame.pixel(x, row0 + y);
          strip.set(x, y, p[0], p[1], p[2], p[3]);
        }
      encoded.push_back(codec->encode(strip));
    }
    std::size_t total = 0;
    for (const auto& e : encoded) total += e.size();
    util::WallTimer timer;
    for (int r = 0; r < repeats; ++r)
      for (const auto& e : encoded) (void)codec->decode(e);
    std::printf("%-18d %-10d %-14s %-14s\n", group, pieces,
                bench::fmt_bytes(static_cast<double>(total)).c_str(),
                bench::fmt_seconds(timer.seconds() / repeats).c_str());
  }
  // §4.1's collective alternative: all nodes keep their own slice but share
  // Huffman statistics, recovering the whole-frame ratio at any node count.
  {
    util::Bytes wire;
    vmp::Cluster::run(std::min(nodes, 16), [&](vmp::Communicator& comm) {
      const int parts = comm.size();
      const int strip_h = size / parts;
      const int y0 = comm.rank() * strip_h;
      const int sh = comm.rank() == parts - 1 ? size - y0 : strip_h;
      render::Image strip(size, sh);
      for (int y = 0; y < sh; ++y)
        for (int x = 0; x < size; ++x) {
          const auto* p = frame.pixel(x, y0 + y);
          strip.set(x, y, p[0], p[1], p[2], p[3]);
        }
      auto encoded = compositing::collective_jpeg_encode(comm, strip, y0,
                                                         size, size, 75);
      if (comm.rank() == 0) wire = std::move(encoded);
    });
    util::WallTimer timer;
    for (int r = 0; r < repeats; ++r)
      (void)compositing::collective_jpeg_decode(wire);
    std::printf("%-18s %-10d %-14s %-14s  <- shared Huffman tables (§4.1)\n",
                "collective", std::min(nodes, 16),
                bench::fmt_bytes(static_cast<double>(wire.size())).c_str(),
                bench::fmt_seconds(timer.seconds() / repeats).c_str());
  }

  std::printf(
      "\nShape: a moderate grouping (a few slices per piece) recovers most\n"
      "of the whole-frame compression ratio while keeping piece counts low\n"
      "enough for cheap client decoding — the paper's suggested hybrid.\n"
      "The collective row is §4.1's \"collectively compress\" variant: every\n"
      "node keeps its own slice, statistics are allreduced, and the ratio\n"
      "lands near the assembled frame without any grouping compromise.\n");
  return 0;
}
