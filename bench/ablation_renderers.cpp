// Ablation (§6 discussion): ray casting versus shear-warp for time-varying
// data. Shear-warp renders each frame faster, but its per-time-step
// preprocessing (classification + run-length encoding) must be repeated for
// every volume of the sequence — "a shear-warp image and a ray-cast image
// could take almost the same amount of time to generate".
#include <cstdio>

#include "bench/common.hpp"
#include "render/raycast.hpp"
#include "render/shearwarp.hpp"
#include "util/flags.hpp"
#include "util/timer.hpp"

using namespace tvviz;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int steps = static_cast<int>(flags.get_int("steps", 6));
  const int image = static_cast<int>(flags.get_int("image", 192));
  const int scale = static_cast<int>(flags.get_int("scale", 2));

  bench::print_header(
      "Ablation — ray casting vs shear-warp on a time-varying sequence",
      std::to_string(steps) + " steps of the turbulent jet (1/" +
          std::to_string(scale) + " scale), " + std::to_string(image) +
          "^2 images");

  auto desc = field::scaled(field::turbulent_jet_desc(), scale, steps);
  const render::Camera camera(image, image, 0.5, 0.3);
  const auto tf = render::TransferFunction::fire();

  render::RenderOptions opt;
  opt.shading = false;  // compare like with like (shear-warp is unshaded)
  render::RayCaster caster(opt);
  render::ShearWarpRenderer sw;

  double t_raycast = 0.0, t_sw_pre = 0.0, t_sw_render = 0.0, t_gen = 0.0;
  for (int step = 0; step < desc.steps; ++step) {
    util::WallTimer tg;
    const auto vol = field::generate(desc, step);
    t_gen += tg.seconds();

    util::WallTimer t1;
    (void)caster.render_full(vol, camera, tf);
    t_raycast += t1.seconds();

    util::WallTimer t2;
    const auto classified = sw.preprocess(vol, tf);
    t_sw_pre += t2.seconds();
    util::WallTimer t3;
    (void)sw.render(classified, camera);
    t_sw_render += t3.seconds();
  }

  const auto per = [&](double t) { return t / desc.steps; };
  std::printf("%-34s %s/frame\n", "ray casting (render only):",
              bench::fmt_seconds(per(t_raycast)).c_str());
  std::printf("%-34s %s/frame\n", "shear-warp render only:",
              bench::fmt_seconds(per(t_sw_render)).c_str());
  std::printf("%-34s %s/frame\n", "shear-warp preprocessing:",
              bench::fmt_seconds(per(t_sw_pre)).c_str());
  std::printf("%-34s %s/frame\n", "shear-warp TOTAL (time-varying):",
              bench::fmt_seconds(per(t_sw_pre + t_sw_render)).c_str());
  std::printf(
      "\npreprocessing / shear-warp render = %.1fx — for time-varying data\n"
      "the per-step preprocessing dominates shear-warp's own render time,\n"
      "erasing most of its speed advantage (the §6 argument).\n",
      t_sw_pre / t_sw_render);
  std::printf(
      "shear-warp total / ray-cast = %.2f  (paper: \"almost the same\";\n"
      "our ray caster lacks space leaping, so it samples the jet's empty\n"
      "space that shear-warp's run-length encoding skips — the residual\n"
      "gap is that optimization, not the factorization itself)\n",
      (t_sw_pre + t_sw_render) / t_raycast);
  return 0;
}
