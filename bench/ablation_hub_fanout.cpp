// Ablation: hub fan-out scaling. A paced producer streams compressed
// frames through the FrameHub to 1..8 clients over per-client link models,
// measuring each client's frame rate and inter-frame delay. The claims
// under test:
//
//   * fan-out is by reference — the cache insert counter equals the step
//     count no matter how many clients are attached (encoded once);
//   * a 10x-slowed client degrades only its own frame rate: every other
//     client stays within 10% of the single-client baseline, and the slow
//     client's loss shows up as counted step skips, not as stalls.
//
// The same workload runs on any of the hub's three client transports
// (--transport): `inproc` attaches ClientPorts directly (the original
// form), `tcp-epoll` and `tcp-threads` put a real HubTcpServer in front and
// attach HubTcpViewer sockets, selecting the readiness-loop or the legacy
// thread-per-connection accept path — the apples-to-apples ablation for
// DESIGN.md §14. Over TCP the slow client is simulated by stalling its
// read loop for the modeled link time (its identity and skip accounting
// still live server-side).
//
//   ./ablation_hub_fanout [--steps 60] [--period-ms 4] [--bytes 16384]
//                         [--transport inproc|tcp-epoll|tcp-threads]
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "hub/hub.hpp"
#include "hub/tcp_hub.hpp"
#include "obs/counters.hpp"
#include "util/flags.hpp"
#include "util/mutex.hpp"
#include "util/timer.hpp"

using namespace tvviz;

namespace {

enum class Transport { kInproc, kTcpEpoll, kTcpThreads };

struct ClientRun {
  std::string id;
  int frames = 0;
  double fps = 0.0;
  double inter_frame_s = 0.0;
  std::uint64_t skipped = 0;
};

struct RunResult {
  std::vector<ClientRun> clients;
  std::uint64_t cache_inserts = 0;
  std::uint64_t cache_hits = 0;
};

/// One fan-out run: `clients` viewers, the last throttled by `slow_link`
/// when given, a producer pacing `steps` frames `period_s` apart.
RunResult run_fanout(Transport transport, int clients, int steps,
                     double period_s, std::size_t frame_bytes,
                     const net::LinkModel* slow_link) {
  obs::reset_counters();
  hub::HubConfig cfg;
  cfg.cache_steps = 16;
  cfg.client_queue_frames = 6;
  cfg.tcp_transport = transport == Transport::kTcpThreads
                          ? hub::HubConfig::TcpTransport::kThreadPerConnection
                          : hub::HubConfig::TcpTransport::kEpoll;

  std::unique_ptr<hub::FrameHub> local;
  std::unique_ptr<hub::HubTcpServer> server;
  if (transport == Transport::kInproc)
    local = std::make_unique<hub::FrameHub>(cfg);
  else
    server = std::make_unique<hub::HubTcpServer>(0, cfg);
  hub::FrameHub& hub = local ? *local : server->hub();
  auto renderer = hub.connect_renderer();

  RunResult result;
  std::vector<std::thread> threads;
  util::Mutex result_mutex;
  for (int k = 0; k < clients; ++k) {
    const bool slow = slow_link && k == clients - 1;
    if (transport == Transport::kInproc) {
      hub::ClientOptions options;
      options.id = "c" + std::to_string(k);
      if (slow) {
        options.link = *slow_link;
        options.link_time_scale = 1.0;
      }
      auto port = hub.connect_client(options);
      threads.emplace_back([port, &result, &result_mutex] {
        ClientRun run;
        run.id = port->id();
        util::WallTimer clock;
        double first = -1.0, last = -1.0;
        while (auto msg = port->next()) {
          if (msg->type == net::MsgType::kShutdown) break;
          port->ack(msg->frame_index);
          last = clock.seconds();
          if (first < 0.0) first = last;
          ++run.frames;
        }
        if (run.frames > 1) {
          run.inter_frame_s = (last - first) / (run.frames - 1);
          run.fps = 1.0 / run.inter_frame_s;
        }
        util::LockGuard lock(result_mutex);
        result.clients.push_back(std::move(run));
      });
    } else {
      // Real socket path: the slow link becomes a read-loop stall of the
      // modeled transfer time (backpressure arrives via the socket, the
      // skip accounting stays server-side exactly as in-process).
      const double stall_s =
          slow ? slow_link->transfer_seconds(frame_bytes) : 0.0;
      const int port = server->port();
      threads.emplace_back([port, k, stall_s, &result, &result_mutex] {
        hub::HubTcpViewer::Options options;
        options.client_id = "c" + std::to_string(k);
        hub::HubTcpViewer viewer(port, options);
        ClientRun run;
        run.id = viewer.assigned_id();
        util::WallTimer clock;
        double first = -1.0, last = -1.0;
        while (auto msg = viewer.next()) {
          if (msg->type == net::MsgType::kShutdown) break;
          if (msg->type != net::MsgType::kFrame) continue;
          viewer.ack(msg->frame_index);
          if (stall_s > 0.0)
            std::this_thread::sleep_for(
                std::chrono::duration<double>(stall_s));
          last = clock.seconds();
          if (first < 0.0) first = last;
          ++run.frames;
        }
        if (run.frames > 1) {
          run.inter_frame_s = (last - first) / (run.frames - 1);
          run.fps = 1.0 / run.inter_frame_s;
        }
        util::LockGuard lock(result_mutex);
        result.clients.push_back(std::move(run));
      });
    }
  }
  if (server) {
    // Streaming before every handshake lands would hand early viewers a
    // head start; wait until the hub has filed all of them.
    util::WallTimer settle;
    while (hub.connected_clients() < static_cast<std::size_t>(clients) &&
           settle.seconds() < 10.0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Paced producer: one message per step, the payload "encoded" exactly
  // once here and never again downstream.
  const util::Bytes payload(frame_bytes, 0x5a);
  for (int s = 0; s < steps; ++s) {
    net::NetMessage msg;
    msg.type = net::MsgType::kFrame;
    msg.frame_index = s;
    msg.codec = "raw";
    msg.payload = payload;
    renderer->send(std::move(msg));
    std::this_thread::sleep_for(std::chrono::duration<double>(period_s));
  }
  net::NetMessage bye;
  bye.type = net::MsgType::kShutdown;
  renderer->send(std::move(bye));

  for (auto& t : threads) t.join();
  if (server)
    server->shutdown();
  else
    hub.shutdown();
  for (const auto& s : hub.client_stats())
    for (auto& run : result.clients)
      if (run.id == s.id) run.skipped = s.steps_skipped;
  result.cache_inserts = obs::counter("net.hub.cache.inserts").value();
  result.cache_hits = obs::counter("net.hub.cache.hits").value();
  // Deterministic report order (threads finish in arbitrary order).
  std::sort(result.clients.begin(), result.clients.end(),
            [](const ClientRun& a, const ClientRun& b) { return a.id < b.id; });
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int steps = static_cast<int>(flags.get_int("steps", 60));
  const double period_s = flags.get_double("period-ms", 4.0) / 1e3;
  const auto frame_bytes =
      static_cast<std::size_t>(flags.get_int("bytes", 16384));
  const std::string transport_name = flags.get("transport", "inproc");
  Transport transport;
  if (transport_name == "inproc") {
    transport = Transport::kInproc;
  } else if (transport_name == "tcp-epoll") {
    transport = Transport::kTcpEpoll;
  } else if (transport_name == "tcp-threads") {
    transport = Transport::kTcpThreads;
  } else {
    std::fprintf(stderr,
                 "unknown --transport %s (inproc|tcp-epoll|tcp-threads)\n",
                 transport_name.c_str());
    return 1;
  }
  std::printf("transport: %s\n", transport_name.c_str());

  // The slow client's link makes each delivery cost ~10 producer periods.
  net::LinkModel slow;
  slow.name = "slow-wan";
  slow.latency_s = 10.0 * period_s;
  slow.bandwidth_bytes_per_s = 1e12;

  const auto baseline =
      run_fanout(transport, 1, steps, period_s, frame_bytes, nullptr);
  const double baseline_fps = baseline.clients[0].fps;
  std::printf("baseline (1 client): %.1f fps, inter-frame %.2f ms\n\n",
              baseline_fps, baseline.clients[0].inter_frame_s * 1e3);

  std::printf("%-8s %-10s %8s %10s %12s %8s | %8s %8s\n", "clients", "link",
              "frames", "fps", "inter-frame", "skipped", "inserts", "hits");
  for (const bool inject_slow : {false, true}) {
    for (const int n : {2, 4, 8}) {
      const auto r = run_fanout(transport, n, steps, period_s, frame_bytes,
                                inject_slow ? &slow : nullptr);
      for (std::size_t k = 0; k < r.clients.size(); ++k) {
        const auto& c = r.clients[k];
        const bool slow_one =
            inject_slow && c.id == "c" + std::to_string(n - 1);
        std::printf("%-8s %-10s %8d %10.1f %10.2f ms %8llu | %8llu %8llu\n",
                    k == 0 ? std::to_string(n).c_str() : "",
                    slow_one ? "10x-slow" : "fast", c.frames, c.fps,
                    c.inter_frame_s * 1e3,
                    static_cast<unsigned long long>(c.skipped),
                    k == 0 ? static_cast<unsigned long long>(r.cache_inserts)
                           : 0ull,
                    k == 0 ? static_cast<unsigned long long>(r.cache_hits)
                           : 0ull);
        // The isolation claim: every unthrottled client within 10% of the
        // single-client baseline even while the slow one lags.
        if (!slow_one && c.fps < 0.9 * baseline_fps)
          std::printf("  !! %s fell below 90%% of baseline (%.1f < %.1f)\n",
                      c.id.c_str(), c.fps, 0.9 * baseline_fps);
      }
      if (r.cache_inserts != static_cast<std::uint64_t>(steps))
        std::printf("  !! cache inserts %llu != steps %d (re-encode?)\n",
                    static_cast<unsigned long long>(r.cache_inserts), steps);
    }
    if (!inject_slow)
      std::printf("---- with the last client on a 10x-slow link ----\n");
  }
  std::printf(
      "\nencode-once check: inserts == steps on every run; hits count the\n"
      "extra reference-counted deliveries (clients-1 per step + resumes).\n");
  return 0;
}
