// Figure 9: per-frame time breakdown — rendering versus display — on 16
// processors of the Origin 2000, using remote X (top chart) and the
// compression-based display daemon (bottom chart), for four image sizes.
//
// Expected shape: under X the display time rivals or exceeds rendering;
// under the daemon the total is dominated by rendering, not transmission.
#include <cstdio>

#include "bench/common.hpp"
#include "core/pipesim.hpp"
#include "util/flags.hpp"

using namespace tvviz;

namespace {
void run_chart(core::PipelineConfig cfg, const char* title) {
  std::printf("\n%s\n", title);
  std::printf("  %-8s %-12s %-12s %-12s %-14s\n", "size", "input", "render+",
              "display", "display/render");
  for (int s : bench::paper_image_sizes()) {
    cfg.image_width = cfg.image_height = s;
    const auto result = core::simulate_pipeline(cfg);
    const auto& b = result.breakdown;
    const double render_side = b.render + b.composite + b.compress;
    const double display_side = b.transfer + b.client;
    std::printf("  %4d^2   %-12s %-12s %-12s %10.2fx\n", s,
                bench::fmt_seconds(b.input).c_str(),
                bench::fmt_seconds(render_side).c_str(),
                bench::fmt_seconds(display_side).c_str(),
                display_side / render_side);
  }
}
}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  bench::init_observability(flags);
  bench::print_header(
      "Figure 9 — render vs display time per frame (16 procs, O2K)",
      "turbulent jet; top: remote X; bottom: compression-based daemon");

  core::PipelineConfig cfg;
  cfg.processors = static_cast<int>(flags.get_int("processors", 16));
  // All 16 processors render each volume, matching the figure's setting.
  cfg.groups = static_cast<int>(flags.get_int("groups", 1));
  cfg.dataset = field::turbulent_jet_desc();
  cfg.steps_limit = 24;
  cfg.costs = core::StageCosts::o2k_paper();
  cfg.codec = core::CodecProfile::paper("jpeg+lzo");

  cfg.output = core::OutputMode::kXWindow;
  run_chart(cfg, "Top chart — remote X display:");
  cfg.output = core::OutputMode::kDaemonCompressed;
  run_chart(cfg, "Bottom chart — compression-based display daemon:");

  std::printf(
      "\nPaper shape: with X the display time can take as much as the\n"
      "rendering time (ratio near or above 1); with the daemon the frame\n"
      "rate is dominated by rendering, not image transmission (ratio << 1).\n");
  bench::finish_observability();
  return 0;
}
