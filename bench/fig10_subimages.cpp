// Figure 10: client-side time to decompress all sub-images of one 512^2
// frame, when the frame arrives as a single full image versus as N
// independently-compressed pieces (parallel compression, 2..64 processors).
// REAL measurement: our rendered frame, split, JPEG+LZO per piece, decoded
// with our codecs; repeated and averaged.
//
// Paper shape: decompressing 2-8 smaller pieces is no slower (even faster)
// than one full image; at >= 16 pieces the per-piece overhead dominates and
// decompression time rises significantly. Total compressed bytes also grow
// with piece count ("compressing each piece independently would result in
// poor compression rates").
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "codec/image_codec.hpp"
#include "util/flags.hpp"
#include "util/timer.hpp"

using namespace tvviz;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int size = static_cast<int>(flags.get_int("size", 512));
  const int repeats = static_cast<int>(flags.get_int("repeats", 5));

  bench::print_header(
      "Figure 10 — decompression time vs number of sub-image pieces",
      "one " + std::to_string(size) + "^2 turbulent-jet frame, JPEG+LZO, "
      "real decode timings (x" + std::to_string(repeats) + " repeats)");

  const auto frame = bench::render_frame(field::DatasetKind::kTurbulentJet, size);
  const auto codec = codec::make_image_codec("jpeg+lzo", 75);

  std::printf("%-10s %-14s %-16s %-14s\n", "pieces", "total bytes",
              "decode time", "vs 1 piece");
  double single_time = 0.0;
  for (const int pieces : {1, 2, 4, 8, 16, 32, 64}) {
    // Split into `pieces` horizontal strips (binary-swap slices).
    std::vector<util::Bytes> encoded;
    const int base = size / pieces;
    const int extra = size % pieces;
    int row = 0;
    for (int piece = 0; piece < pieces; ++piece) {
      const int rows = base + (piece < extra ? 1 : 0);
      render::Image strip(size, rows);
      for (int y = 0; y < rows; ++y)
        for (int x = 0; x < size; ++x) {
          const auto* p = frame.pixel(x, row + y);
          strip.set(x, y, p[0], p[1], p[2], p[3]);
        }
      row += rows;
      encoded.push_back(codec->encode(strip));
    }
    std::size_t total = 0;
    for (const auto& e : encoded) total += e.size();

    // Decode all pieces; average over repeats.
    util::WallTimer timer;
    for (int r = 0; r < repeats; ++r)
      for (const auto& e : encoded) (void)codec->decode(e);
    const double decode_s = timer.seconds() / repeats;
    if (pieces == 1) single_time = decode_s;
    std::printf("%-10d %-14s %-16s %10.2fx\n", pieces,
                bench::fmt_bytes(static_cast<double>(total)).c_str(),
                bench::fmt_seconds(decode_s).c_str(),
                decode_s / single_time);
  }
  std::printf(
      "\nPaper shape: 2-8 pieces decode about as fast as (or faster than)\n"
      "one full image; 16+ pieces are significantly slower, and total\n"
      "compressed size grows with piece count — motivating the hybrid\n"
      "grouping approach (see bench/ablation_grouping).\n");
  return 0;
}
