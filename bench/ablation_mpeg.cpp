// Ablation (§4.2): the MPEG decision, quantified. The paper rejects MPEG
// for the interactive setting — "each image is generated on the fly and to
// be displayed in real time ... the overhead would be too high to make
// both the encoding and decoding efficient in software." We measure bytes
// per frame AND encode/decode cost for the motion-compensated codec versus
// the paper's choices on a real animation sequence.
#include <cstdio>

#include "bench/common.hpp"
#include "codec/framediff.hpp"
#include "codec/image_codec.hpp"
#include "codec/lz.hpp"
#include "codec/motion.hpp"
#include "field/generators.hpp"
#include "render/raycast.hpp"
#include "util/flags.hpp"
#include "util/timer.hpp"

using namespace tvviz;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int steps = static_cast<int>(flags.get_int("steps", 10));
  const int image = static_cast<int>(flags.get_int("image", 256));

  bench::print_header(
      "Ablation — MPEG-style coding vs the paper's choices (§4.2)",
      std::to_string(steps) + "-frame jet animation at " +
          std::to_string(image) + "^2, native cadence");

  auto desc = field::scaled(field::turbulent_jet_desc(), 2, 150);
  render::RayCaster caster;
  const render::Camera camera(image, image);
  const auto tf = render::TransferFunction::fire();
  std::vector<render::Image> frames;
  for (int s = 70; s < 70 + steps; ++s)
    frames.push_back(
        caster.render_full(field::generate(desc, s), camera, tf, true));

  struct Row {
    const char* name;
    std::size_t bytes = 0;
    double encode_s = 0.0, decode_s = 0.0;
    bool lossless = false;
  };
  Row rows[3] = {{"JPEG+LZO per frame"}, {"frame-diff + LZO", 0, 0, 0, true},
                 {"MPEG-style (GOP 10)"}};

  // Paper's path: independent JPEG+LZO frames.
  {
    const auto codec = codec::make_image_codec("jpeg+lzo", 75);
    std::vector<util::Bytes> packed;
    util::WallTimer te;
    for (const auto& f : frames) packed.push_back(codec->encode(f));
    rows[0].encode_s = te.seconds();
    util::WallTimer td;
    for (const auto& p : packed) (void)codec->decode(p);
    rows[0].decode_s = td.seconds();
    for (const auto& p : packed) rows[0].bytes += p.size();
  }
  // §7.1 lossless alternative.
  {
    codec::FrameDiffEncoder enc(std::make_shared<codec::LzCodec>());
    codec::FrameDiffDecoder dec(std::make_shared<codec::LzCodec>());
    std::vector<util::Bytes> packed;
    util::WallTimer te;
    for (const auto& f : frames) packed.push_back(enc.encode_frame(f));
    rows[1].encode_s = te.seconds();
    util::WallTimer td;
    for (const auto& p : packed) (void)dec.decode_frame(p);
    rows[1].decode_s = td.seconds();
    for (const auto& p : packed) rows[1].bytes += p.size();
  }
  // The rejected option.
  {
    codec::MotionCodecOptions opt;
    opt.gop = 10;
    codec::MotionEncoder enc(opt);
    codec::MotionDecoder dec(opt);
    std::vector<util::Bytes> packed;
    util::WallTimer te;
    for (const auto& f : frames) packed.push_back(enc.encode_frame(f));
    rows[2].encode_s = te.seconds();
    util::WallTimer td;
    for (const auto& p : packed) (void)dec.decode_frame(p);
    rows[2].decode_s = td.seconds();
    for (const auto& p : packed) rows[2].bytes += p.size();
  }

  std::printf("%-22s %14s %14s %14s\n", "method", "bytes/frame",
              "encode/frame", "decode/frame");
  for (const auto& r : rows)
    std::printf("%-22s %14s %14s %14s\n", r.name,
                bench::fmt_bytes(static_cast<double>(r.bytes) / steps).c_str(),
                bench::fmt_seconds(r.encode_s / steps).c_str(),
                bench::fmt_seconds(r.decode_s / steps).c_str());

  std::printf("\nencode cost, MPEG-style vs JPEG+LZO: %.1fx (the §4.2\n"
              "overhead that rules MPEG out for frames generated on the fly)\n",
              rows[2].encode_s / rows[0].encode_s);
  std::printf("bytes, MPEG-style vs JPEG+LZO: %.2fx (what that overhead buys)\n",
              static_cast<double>(rows[2].bytes) /
                  static_cast<double>(rows[0].bytes));
  return 0;
}
