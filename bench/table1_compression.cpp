// Table 1: compressed image sizes in bytes for Raw / LZO / BZIP / JPEG /
// JPEG+LZO / JPEG+BZIP at 128^2, 256^2, 512^2 and 1024^2 pixels — measured
// on REAL frames of the turbulent jet rendered by our ray caster and
// compressed by our from-scratch codecs. Also reports the §6 cost quotes
// (compression ~6 ms at 128^2 to ~500 ms at 1024^2 on paper hardware).
#include <cstdio>
#include <map>

#include "bench/common.hpp"
#include "codec/image_codec.hpp"
#include "util/flags.hpp"
#include "util/timer.hpp"

using namespace tvviz;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int max_size = static_cast<int>(flags.get_int("max-size", 1024));
  const int quality = static_cast<int>(flags.get_int("quality", 75));

  bench::print_header("Table 1 — compressed image sizes in bytes",
                      "turbulent jet frames, measured with our codecs "
                      "(JPEG quality " + std::to_string(quality) + ")");

  // Paper's Table 1 for reference.
  const std::map<std::string, std::map<int, long>> paper = {
      {"raw", {{128, 49152}, {256, 196608}, {512, 786432}, {1024, 3145728}}},
      {"lzo", {{128, 16666}, {256, 63386}, {512, 235045}, {1024, 848090}}},
      {"bzip", {{128, 12743}, {256, 44867}, {512, 152492}, {1024, 482787}}},
      {"jpeg", {{128, 1509}, {256, 3310}, {512, 9184}, {1024, 28764}}},
      {"jpeg+lzo", {{128, 1282}, {256, 2667}, {512, 6705}, {1024, 18484}}},
      {"jpeg+bzip", {{128, 1642}, {256, 3123}, {512, 7131}, {1024, 18252}}},
  };

  std::vector<int> sizes;
  for (int s : bench::paper_image_sizes())
    if (s <= max_size) sizes.push_back(s);

  // Render each frame once.
  std::map<int, render::Image> frames;
  for (int s : sizes)
    frames.emplace(s, bench::render_frame(field::DatasetKind::kTurbulentJet, s));

  std::printf("\n%-12s", "method\\size");
  for (int s : sizes) std::printf(" %10d^2 (paper)", s);
  std::printf("\n");

  std::map<std::string, std::map<int, double>> enc_time, dec_time;
  for (const auto& name : codec::table1_codec_names()) {
    const auto image_codec = codec::make_image_codec(name, quality);
    std::printf("%-12s", name.c_str());
    for (int s : sizes) {
      util::WallTimer t_enc;
      const auto packed = image_codec->encode(frames.at(s));
      enc_time[name][s] = t_enc.seconds();
      util::WallTimer t_dec;
      (void)image_codec->decode(packed);
      dec_time[name][s] = t_dec.seconds();
      std::printf(" %10zu (%6ld)", packed.size(), paper.at(name).at(s));
    }
    std::printf("\n");
  }

  // Compression percentage achieved by the two-phase approach (paper: the
  // rates are "96% and up").
  std::printf("\nJPEG+LZO compression rate vs raw:\n");
  for (int s : sizes) {
    const auto codec_raw = codec::make_image_codec("raw");
    const auto codec_two = codec::make_image_codec("jpeg+lzo", quality);
    const double raw = static_cast<double>(codec_raw->encode(frames.at(s)).size());
    const double two = static_cast<double>(codec_two->encode(frames.at(s)).size());
    std::printf("  %4d^2: %.1f%% reduction %s\n", s, 100.0 * (1.0 - two / raw),
                (1.0 - two / raw) > 0.96 ? "(>=96%, as in the paper)" : "");
  }

  std::printf("\nJPEG+LZO codec cost on this host (paper hardware: 6 ms at\n"
              "128^2 to ~500 ms at 1024^2 compress; 12-600 ms decompress):\n");
  std::printf("  %-8s %-14s %-14s\n", "size", "compress", "decompress");
  for (int s : sizes)
    std::printf("  %4d^2   %-14s %-14s\n", s,
                bench::fmt_seconds(enc_time["jpeg+lzo"][s]).c_str(),
                bench::fmt_seconds(dec_time["jpeg+lzo"][s]).c_str());
  return 0;
}
