// Figure 6: overall execution time versus number of processor partitions L
// for P in {16, 32, 64} on the RWCP cluster. Workload: first 128 time steps
// of the turbulent jet data set, 256x256 output.
//
// Expected shape: U-shaped curves with an interior optimum (the paper
// measured L = 4 for all three processor counts).
#include <cstdio>

#include "bench/common.hpp"
#include "core/perfmodel.hpp"
#include "core/pipesim.hpp"
#include "util/flags.hpp"

using namespace tvviz;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int steps = static_cast<int>(flags.get_int("steps", 128));
  const int image = static_cast<int>(flags.get_int("image", 256));

  bench::print_header(
      "Figure 6 — overall execution time vs #partitions (RWCP cluster)",
      "turbulent jet, first " + std::to_string(steps) + " steps, " +
          std::to_string(image) + "x" + std::to_string(image) + " image");

  core::PipelineConfig cfg;
  cfg.dataset = field::turbulent_jet_desc();
  cfg.steps_limit = steps;
  cfg.image_width = cfg.image_height = image;
  cfg.costs = core::StageCosts::rwcp_paper();
  cfg.codec = core::CodecProfile::paper("jpeg+lzo");

  for (const int p : {16, 32, 64}) {
    cfg.processors = p;
    std::printf("\nP = %d processors\n", p);
    std::printf("  %-12s %-16s %-16s\n", "partitions", "overall time",
                "model predicts");
    double best_t = 1e300;
    int best_l = 0;
    std::vector<std::pair<int, double>> rows;
    for (int l = 1; l <= p; l *= 2) {
      cfg.groups = l;
      const auto result = core::simulate_pipeline(cfg);
      const auto model = core::predict_pipeline(cfg);
      rows.emplace_back(l, result.metrics.overall_time);
      std::printf("  L = %-8d %-16s %-16s\n", l,
                  bench::fmt_seconds(result.metrics.overall_time).c_str(),
                  bench::fmt_seconds(model.overall_time).c_str());
      if (result.metrics.overall_time < best_t) {
        best_t = result.metrics.overall_time;
        best_l = l;
      }
    }
    std::printf("  optimum: L = %d (%s)%s\n", best_l,
                bench::fmt_seconds(best_t).c_str(),
                (best_l > 1 && best_l < p) ? "  [interior, as in the paper]"
                                           : "  [boundary - check costs]");
  }

  std::printf(
      "\nPaper result: an interior optimum exists (L = 4 for P = 16/32/64);\n"
      "both pure intra-volume (L = 1) and pure inter-volume (L = P)\n"
      "parallelism lose to the hybrid.\n");
  return 0;
}
