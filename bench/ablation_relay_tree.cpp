// Ablation: relay-tree root egress. The claim under test is the one the
// relay subsystem exists for — a root hub serving a tree of edge hubs pays
// egress per *edge*, not per *viewer*, where a flat deployment pays per
// viewer:
//
//   * direct runs attach every viewer straight to the root's HubTcpServer:
//     root egress is measured as the sum of viewer wire bytes and grows
//     linearly with the viewer count;
//   * tree runs put 4 EdgeHubs in front and split the same viewers across
//     them: root egress is the sum of the edges' upstream wire bytes, and
//     quadrupling the viewers must leave it flat — each step's payload
//     crosses the root-to-edge link once per edge, however many viewers an
//     edge re-serves from its content-addressed cache.
//
// The gated metric (tools/bench_gate.py --metric root_egress_ratio) is
// tree-egress-at-32-viewers / tree-egress-at-8-viewers: ~1.0 while the
// relay dedups correctly, creeping toward 4.0 if a regression starts
// re-shipping payloads per viewer. Both sides run on the same machine in
// the same process, so the ratio is host-independent.
//
//   ./ablation_relay_tree [--steps 24] [--bytes 32768] [--edges 4]
//                         [--small-viewers 8] [--large-viewers 32]
//                         [--json BENCH_relay_tree.json]
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "hub/hub.hpp"
#include "hub/tcp_hub.hpp"
#include "relay/relay.hpp"
#include "util/flags.hpp"
#include "util/timer.hpp"

using namespace tvviz;

namespace {

struct RunResult {
  std::string name;
  int viewers = 0;
  int edges = 0;  // 0 = direct (viewers on the root)
  std::uint64_t frames = 0;  // total frames delivered across viewers
  std::uint64_t root_egress_bytes = 0;
  double stream_s = 0.0;
  bool lossless = true;
};

/// One deployment: `n_edges` EdgeHubs under a root (0 = flat), `viewers`
/// split round-robin across the edges (or all on the root), a producer
/// streaming `steps` distinct frames. Distinct payloads per step, so tree
/// egress reflects genuine transfer, not content dedup between steps.
RunResult run_case(std::string name, int n_edges, int viewers, int steps,
                   std::size_t frame_bytes) {
  hub::HubConfig cfg;
  cfg.cache_steps = static_cast<std::size_t>(2 * steps);
  cfg.client_queue_frames = static_cast<std::uint32_t>(2 * steps);

  hub::HubTcpServer root(0, cfg);
  std::vector<std::unique_ptr<relay::EdgeHub>> edges;
  std::vector<int> ports;
  for (int e = 0; e < n_edges; ++e) {
    relay::EdgeHubConfig ec;
    ec.upstream_port = root.port();
    ec.hub = cfg;
    ec.edge_id = "edge-" + std::to_string(e);
    edges.push_back(std::make_unique<relay::EdgeHub>(ec));
    ports.push_back(edges.back()->port());
  }
  if (ports.empty()) ports.push_back(root.port());

  std::atomic<std::uint64_t> frames{0};
  std::atomic<std::uint64_t> viewer_bytes{0};
  std::atomic<int> short_runs{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(viewers));
  for (int k = 0; k < viewers; ++k) {
    const int port = ports[static_cast<std::size_t>(k) % ports.size()];
    threads.emplace_back([&, port, k, steps] {
      hub::HubTcpViewer::Options options;
      options.client_id = "v" + std::to_string(k);
      options.queue_frames = static_cast<std::uint32_t>(2 * steps);
      hub::HubTcpViewer viewer(port, options);
      int got = 0;
      while (auto msg = viewer.next()) {
        if (msg->type == net::MsgType::kShutdown) break;
        if (msg->type != net::MsgType::kFrame) continue;
        viewer.ack(msg->frame_index);
        ++got;
      }
      frames.fetch_add(static_cast<std::uint64_t>(got));
      viewer_bytes.fetch_add(viewer.bytes_received());
      if (got != steps) short_runs.fetch_add(1);
    });
  }

  // Stream only once every handshake has landed, or early viewers get a
  // head start and late ones miss leading steps.
  {
    const auto connected = [&] {
      if (edges.empty()) return root.hub().connected_clients();
      std::size_t n = 0;
      for (const auto& e : edges) n += e->hub().connected_clients();
      return n;
    };
    util::WallTimer settle;
    while (connected() < static_cast<std::size_t>(viewers) &&
           settle.seconds() < 10.0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  auto renderer = root.hub().connect_renderer();
  util::WallTimer clock;
  for (int s = 0; s < steps; ++s) {
    net::NetMessage msg;
    msg.type = net::MsgType::kFrame;
    msg.frame_index = s;
    msg.codec = "raw";
    msg.payload = util::Bytes(frame_bytes, static_cast<std::uint8_t>(s + 1));
    renderer->send(std::move(msg));
  }
  net::NetMessage bye;
  bye.type = net::MsgType::kShutdown;
  renderer->send(std::move(bye));
  for (auto& t : threads) t.join();

  RunResult result;
  result.name = std::move(name);
  result.viewers = viewers;
  result.edges = n_edges;
  result.stream_s = clock.seconds();
  result.frames = frames.load();
  result.lossless = short_runs.load() == 0;
  if (edges.empty())
    result.root_egress_bytes = viewer_bytes.load();
  else
    for (const auto& e : edges)
      result.root_egress_bytes += e->stats().upstream_bytes;
  for (auto& e : edges) e->shutdown();
  root.shutdown();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int steps = static_cast<int>(flags.get_int("steps", 24));
  const auto bytes = static_cast<std::size_t>(flags.get_int("bytes", 32768));
  const int n_edges = static_cast<int>(flags.get_int("edges", 4));
  const int small = static_cast<int>(flags.get_int("small-viewers", 8));
  const int large = static_cast<int>(flags.get_int("large-viewers", 32));
  const std::string json_path = flags.get("json", "");
  bench::init_observability(flags);

  bench::print_header("relay-tree root egress",
                      "1 root -> " + std::to_string(n_edges) +
                          " edges; egress per edge, not per viewer");

  std::vector<RunResult> runs;
  runs.push_back(run_case("direct-" + std::to_string(small), 0, small, steps,
                          bytes));
  runs.push_back(run_case("direct-" + std::to_string(large), 0, large, steps,
                          bytes));
  runs.push_back(run_case("tree-" + std::to_string(small), n_edges, small,
                          steps, bytes));
  runs.push_back(run_case("tree-" + std::to_string(large), n_edges, large,
                          steps, bytes));

  std::printf("%-12s %8s %6s %10s %16s %10s %9s\n", "run", "viewers", "edges",
              "frames", "root egress", "stream", "lossless");
  for (const auto& r : runs)
    std::printf("%-12s %8d %6d %10llu %16s %8.3fs %9s\n", r.name.c_str(),
                r.viewers, r.edges, static_cast<unsigned long long>(r.frames),
                bench::fmt_bytes(static_cast<double>(r.root_egress_bytes))
                    .c_str(),
                r.stream_s, r.lossless ? "yes" : "NO");

  const double direct_ratio =
      static_cast<double>(runs[1].root_egress_bytes) /
      static_cast<double>(runs[0].root_egress_bytes);
  const double tree_ratio = static_cast<double>(runs[3].root_egress_bytes) /
                            static_cast<double>(runs[2].root_egress_bytes);
  std::printf(
      "\ndirect egress ratio (%dx -> %dx viewers): %.3f (scales with "
      "viewers)\n",
      small, large, direct_ratio);
  std::printf(
      "tree egress ratio   (%dx -> %dx viewers): %.3f (stays flat: root "
      "pays per edge)\n",
      small, large, tree_ratio);

  bool ok = true;
  for (const auto& r : runs)
    if (!r.lossless) ok = false;

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"ablation_relay_tree\",\n");
    std::fprintf(f, "  \"steps\": %d,\n  \"bytes\": %zu,\n  \"edges\": %d,\n",
                 steps, bytes, n_edges);
    std::fprintf(f, "  \"runs\": [\n");
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const auto& r = runs[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"viewers\": %d, \"edges\": %d, "
                   "\"frames\": %llu, \"root_egress_bytes\": %llu, "
                   "\"stream_s\": %.4f, \"lossless\": %s}%s\n",
                   r.name.c_str(), r.viewers, r.edges,
                   static_cast<unsigned long long>(r.frames),
                   static_cast<unsigned long long>(r.root_egress_bytes),
                   r.stream_s, r.lossless ? "true" : "false",
                   i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"root_egress_ratio\": %.4f,\n", tree_ratio);
    std::fprintf(f, "  \"direct_egress_ratio\": %.4f\n", direct_ratio);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  bench::finish_observability();

  if (!ok) {
    std::fprintf(stderr, "FAIL: at least one run lost frames\n");
    return 1;
  }
  return 0;
}
