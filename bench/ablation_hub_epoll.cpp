// Ablation: the event-driven hub core at wide-area fan-out scale. A
// single-threaded epoll client swarm drives the HubTcpServer with
// thousands of simulated viewers over real loopback sockets — each one
// completes the v2 capability handshake, receives every streamed step, and
// disconnects — while the hub runs its own readiness loop + worker pool.
// The claims under test:
//
//   * the epoll transport sustains 10k concurrent viewers on O(1) hub
//     threads, losslessly (every client sees every step + the shutdown);
//   * per-client fan-out cost is flat in the client count: us/client/step
//     at the large count stays within the gate's budget of the small-count
//     cost (`fanout_scaling_ratio`, gated by tools/bench_gate.py);
//   * apples-to-apples against the legacy thread-per-connection transport
//     on the same workload (`legacy_vs_epoll_ratio`; the legacy run uses
//     the small client count — it spawns ~2 threads per viewer).
//
// The WAN leg is analytic: loopback measures the hub's own per-client
// cost, and the report folds in the paper's link presets
// (wan_nasa_ucd/wan_japan_ucd) as the modeled per-frame transfer each
// remote viewer would add on top — the same first-order model the other
// benches use, with no sleeps distorting the scaling measurement.
//
//   ./ablation_hub_epoll [--clients 10000] [--small-clients 500]
//                        [--steps 16] [--bytes 4096] [--skip-legacy]
//                        [--json BENCH_hub_epoll.json]
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "hub/tcp_hub.hpp"
#include "net/link.hpp"
#include "net/protocol.hpp"
#include "util/flags.hpp"
#include "util/timer.hpp"

using namespace tvviz;

namespace {

/// Raise RLIMIT_NOFILE to fit `requested` viewers (each needs a swarm-side
/// and a hub-side descriptor). Returns the viewer count that actually fits.
int cap_clients(int requested) {
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return std::min(requested, 256);
  const rlim_t need = 2 * static_cast<rlim_t>(requested) + 4096;
  if (rl.rlim_cur >= need) return requested;
  rlimit want = rl;
  want.rlim_cur = need;
  if (want.rlim_max < need) want.rlim_max = need;  // root may raise the cap
  if (::setrlimit(RLIMIT_NOFILE, &want) == 0) return requested;
  want = rl;
  want.rlim_cur = rl.rlim_max;
  ::setrlimit(RLIMIT_NOFILE, &want);
  ::getrlimit(RLIMIT_NOFILE, &rl);
  const rlim_t fit = rl.rlim_cur > 4096 ? (rl.rlim_cur - 4096) / 2 : 64;
  return static_cast<int>(std::min<rlim_t>(requested, fit));
}

util::Bytes frame_wire_bytes(const net::NetMessage& msg) {
  const util::Bytes body = net::serialize_message(msg);
  util::Bytes out;
  out.reserve(body.size() + 4);
  const std::uint32_t len = static_cast<std::uint32_t>(body.size());
  out.push_back(static_cast<std::uint8_t>(len));
  out.push_back(static_cast<std::uint8_t>(len >> 8));
  out.push_back(static_cast<std::uint8_t>(len >> 16));
  out.push_back(static_cast<std::uint8_t>(len >> 24));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

struct SwarmClient {
  int fd = -1;
  enum Phase { kIdle, kConnecting, kHello, kStream, kDone } phase = kIdle;
  util::Bytes hello;
  std::size_t sent = 0;
  std::vector<std::uint8_t> in;
  std::size_t consumed = 0;
  int frames = 0;
  bool acked = false;
  bool clean_end = false;  ///< Saw kShutdown (vs an unexpected EOF/error).
};

struct RunResult {
  std::string name;
  int clients = 0;
  int steps = 0;
  double connect_s = 0.0;
  double stream_s = 0.0;
  long long frames = 0;
  bool lossless = false;
  double us_per_client_step = 0.0;
};

/// One swarm run against a fresh hub on the given transport.
RunResult run_swarm(const std::string& name,
                    hub::HubConfig::TcpTransport transport, int clients,
                    int steps, std::size_t frame_bytes) {
  hub::HubConfig cfg;
  cfg.tcp_transport = transport;
  cfg.max_clients = static_cast<std::size_t>(clients) + 8;
  cfg.client_queue_frames = static_cast<std::size_t>(steps) + 4;
  cfg.cache_steps = 4;
  hub::HubTcpServer server(0, cfg);
  const int port = server.port();

  RunResult result;
  result.name = name;
  result.clients = clients;
  result.steps = steps;

  const int ep = ::epoll_create1(EPOLL_CLOEXEC);
  if (ep < 0) {
    std::perror("epoll_create1");
    return result;
  }
  std::vector<SwarmClient> swarm(static_cast<std::size_t>(clients));
  const auto watch = [&](int index, std::uint32_t events, bool add) {
    epoll_event ev{};
    ev.events = events;
    ev.data.u32 = static_cast<std::uint32_t>(index);
    ::epoll_ctl(ep, add ? EPOLL_CTL_ADD : EPOLL_CTL_MOD, swarm[index].fd, &ev);
  };

  int started = 0, handshaking = 0, acked = 0, done = 0;
  bool trouble = false;
  const int kMaxInflight = 512;

  const auto start_one = [&](int index) {
    SwarmClient& c = swarm[index];
    c.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (c.fd < 0) {
      trouble = true;
      c.phase = SwarmClient::kDone;
      ++done;
      return;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    net::HelloInfo info;
    info.role = "display";
    info.client_id = "v" + std::to_string(index);
    info.queue_frames = static_cast<std::uint32_t>(steps) + 4;
    c.hello = frame_wire_bytes(net::make_hello(info));
    c.phase = SwarmClient::kConnecting;
    ++handshaking;
    if (::connect(c.fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0)
      c.phase = SwarmClient::kHello;
    else if (errno != EINPROGRESS) {
      trouble = true;
      ::close(c.fd);
      c.fd = -1;
      c.phase = SwarmClient::kDone;
      --handshaking;
      ++done;
      return;
    }
    watch(index, EPOLLOUT, /*add=*/true);
  };

  const auto finish = [&](int index, bool clean) {
    SwarmClient& c = swarm[index];
    if (c.phase == SwarmClient::kDone) return;
    if (c.phase == SwarmClient::kConnecting || c.phase == SwarmClient::kHello)
      --handshaking;
    c.clean_end = clean;
    if (!clean) trouble = true;
    c.phase = SwarmClient::kDone;
    ::epoll_ctl(ep, EPOLL_CTL_DEL, c.fd, nullptr);
    ::close(c.fd);
    c.fd = -1;
    ++done;
  };

  const auto parse_stream = [&](int index) {
    SwarmClient& c = swarm[index];
    while (c.phase != SwarmClient::kDone) {
      if (c.in.size() - c.consumed < 4) break;
      const std::uint8_t* p = c.in.data() + c.consumed;
      const std::uint32_t len = static_cast<std::uint32_t>(p[0]) |
                                (static_cast<std::uint32_t>(p[1]) << 8) |
                                (static_cast<std::uint32_t>(p[2]) << 16) |
                                (static_cast<std::uint32_t>(p[3]) << 24);
      if (c.in.size() - c.consumed < 4 + static_cast<std::size_t>(len)) break;
      net::NetMessage msg;
      try {
        msg = net::deserialize_message(std::span(p + 4, len));
      } catch (const std::exception&) {
        finish(index, /*clean=*/false);
        return;
      }
      c.consumed += 4 + len;
      switch (msg.type) {
        case net::MsgType::kHelloAck:
          if (!c.acked) {
            c.acked = true;
            ++acked;
            --handshaking;
          }
          break;
        case net::MsgType::kFrame:
          ++c.frames;
          break;
        case net::MsgType::kShutdown:
          finish(index, /*clean=*/true);
          return;
        case net::MsgType::kError:
          finish(index, /*clean=*/false);
          return;
        default:
          break;
      }
    }
    if (c.consumed == c.in.size()) {
      c.in.clear();
      c.consumed = 0;
    } else if (c.consumed > (1u << 16)) {
      c.in.erase(c.in.begin(),
                 c.in.begin() + static_cast<std::ptrdiff_t>(c.consumed));
      c.consumed = 0;
    }
  };

  // Pump connects and readiness until `predicate` holds (or nothing moves
  // for 60 s — a wedged run fails loudly instead of hanging CI).
  epoll_event events[256];
  std::uint8_t rdbuf[64 * 1024];
  const auto pump = [&](auto predicate) {
    util::WallTimer idle;
    while (!predicate()) {
      while (started < clients && handshaking < kMaxInflight)
        start_one(started++);
      const int n = ::epoll_wait(ep, events, 256, 100);
      if (n < 0 && errno != EINTR) {
        trouble = true;
        return;
      }
      if (n > 0) idle = util::WallTimer();
      for (int i = 0; i < n; ++i) {
        const int index = static_cast<int>(events[i].data.u32);
        SwarmClient& c = swarm[index];
        if (c.phase == SwarmClient::kDone) continue;
        if (events[i].events & (EPOLLERR | EPOLLHUP)) {
          finish(index, /*clean=*/false);
          continue;
        }
        if (c.phase == SwarmClient::kConnecting) {
          int err = 0;
          socklen_t len = sizeof err;
          ::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len);
          if (err != 0) {
            finish(index, /*clean=*/false);
            continue;
          }
          c.phase = SwarmClient::kHello;
        }
        if (c.phase == SwarmClient::kHello && (events[i].events & EPOLLOUT)) {
          while (c.sent < c.hello.size()) {
            const ssize_t w = ::send(c.fd, c.hello.data() + c.sent,
                                     c.hello.size() - c.sent, MSG_NOSIGNAL);
            if (w > 0) {
              c.sent += static_cast<std::size_t>(w);
            } else if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
              break;
            } else {
              finish(index, /*clean=*/false);
              break;
            }
          }
          if (c.phase != SwarmClient::kDone && c.sent == c.hello.size()) {
            c.phase = SwarmClient::kStream;
            watch(index, EPOLLIN, /*add=*/false);
          }
          continue;
        }
        if (c.phase == SwarmClient::kStream && (events[i].events & EPOLLIN)) {
          for (;;) {
            const ssize_t r = ::read(c.fd, rdbuf, sizeof rdbuf);
            if (r > 0) {
              c.in.insert(c.in.end(), rdbuf, rdbuf + r);
              if (r < static_cast<ssize_t>(sizeof rdbuf)) break;
            } else if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
              break;
            } else {
              finish(index, /*clean=*/false);
              break;
            }
          }
          if (c.phase != SwarmClient::kDone) parse_stream(index);
        }
      }
      if (idle.seconds() > 60.0) {
        trouble = true;
        return;
      }
    }
  };

  util::WallTimer connect_clock;
  pump([&] { return trouble || acked + done >= clients; });
  result.connect_s = connect_clock.seconds();
  if (trouble || done >= clients) {
    std::fprintf(stderr, "%s: handshake phase failed (acked %d, done %d)\n",
                 name.c_str(), acked, done);
    ::close(ep);
    return result;
  }

  // Stream: the renderer is in-process (the measurement isolates the TCP
  // fan-out, not a renderer socket), unpaced, shutdown marker at the end.
  auto renderer = server.hub().connect_renderer();
  const util::Bytes payload(frame_bytes, 0x5a);
  util::WallTimer stream_clock;
  for (int s = 0; s < steps; ++s) {
    net::NetMessage msg;
    msg.type = net::MsgType::kFrame;
    msg.frame_index = s;
    msg.codec = "raw";
    msg.payload = payload;
    renderer->send(std::move(msg));
  }
  {
    net::NetMessage bye;
    bye.type = net::MsgType::kShutdown;
    renderer->send(std::move(bye));
  }
  pump([&] { return done >= clients; });
  result.stream_s = stream_clock.seconds();
  ::close(ep);

  result.lossless = !trouble;
  for (const auto& c : swarm) {
    result.frames += c.frames;
    if (c.frames != steps || !c.clean_end) result.lossless = false;
  }
  result.us_per_client_step =
      result.stream_s * 1e6 /
      (static_cast<double>(clients) * static_cast<double>(steps));
  server.shutdown();
  return result;
}

void print_run(const RunResult& r) {
  std::printf("%-14s %7d clients  connect %6.2fs  stream %6.2fs  "
              "%7.3f us/client/step  %s\n",
              r.name.c_str(), r.clients, r.connect_s, r.stream_s,
              r.us_per_client_step, r.lossless ? "lossless" : "LOSSY");
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int requested = static_cast<int>(flags.get_int("clients", 10000));
  const int small = static_cast<int>(flags.get_int("small-clients", 500));
  const int steps = static_cast<int>(flags.get_int("steps", 16));
  const auto bytes = static_cast<std::size_t>(flags.get_int("bytes", 4096));
  const bool skip_legacy = flags.has("skip-legacy");
  const std::string json_path = flags.get("json", "");

  const int clients = cap_clients(requested);
  if (clients < requested)
    std::printf("fd limit caps the swarm at %d clients (asked %d)\n", clients,
                requested);

  std::vector<RunResult> runs;
  runs.push_back(run_swarm("epoll-small",
                           hub::HubConfig::TcpTransport::kEpoll,
                           std::min(small, clients), steps, bytes));
  print_run(runs.back());
  runs.push_back(run_swarm("epoll-large",
                           hub::HubConfig::TcpTransport::kEpoll, clients,
                           steps, bytes));
  print_run(runs.back());
  if (!skip_legacy) {
    runs.push_back(run_swarm(
        "legacy-small", hub::HubConfig::TcpTransport::kThreadPerConnection,
        std::min(small, clients), steps, bytes));
    print_run(runs.back());
  }

  const double small_cost = runs[0].us_per_client_step;
  const double large_cost = runs[1].us_per_client_step;
  const double scaling =
      small_cost > 0.0 ? large_cost / small_cost : 0.0;
  const double legacy_ratio =
      (!skip_legacy && small_cost > 0.0 && runs.size() > 2)
          ? runs[2].us_per_client_step / small_cost
          : 0.0;
  std::printf("\nfanout_scaling_ratio (epoll large/small): %.3f\n", scaling);
  if (!skip_legacy)
    std::printf("legacy_vs_epoll_ratio (same client count): %.3f\n",
                legacy_ratio);

  // Analytic WAN leg: what each remote viewer would add per frame on the
  // paper's two wide-area paths (latency + bytes/bandwidth; link.hpp).
  const net::LinkModel nasa = net::wan_nasa_ucd();
  const net::LinkModel japan = net::wan_japan_ucd();
  const double nasa_frame_s = nasa.transfer_seconds(bytes);
  const double japan_frame_s = japan.transfer_seconds(bytes);
  std::printf("\nmodeled WAN per-frame transfer on top of hub cost:\n"
              "  %-14s %8.2f ms/frame\n  %-14s %8.2f ms/frame\n",
              nasa.name.c_str(), nasa_frame_s * 1e3, japan.name.c_str(),
              japan_frame_s * 1e3);

  bool ok = true;
  for (const auto& r : runs)
    if (!r.lossless) ok = false;

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"ablation_hub_epoll\",\n");
    std::fprintf(f, "  \"steps\": %d,\n  \"bytes\": %zu,\n", steps, bytes);
    std::fprintf(f, "  \"runs\": [\n");
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const auto& r = runs[i];
      std::fprintf(
          f,
          "    {\"name\": \"%s\", \"clients\": %d, \"connect_s\": %.4f, "
          "\"stream_s\": %.4f, \"frames\": %lld, "
          "\"us_per_client_step\": %.4f, \"lossless\": %s}%s\n",
          r.name.c_str(), r.clients, r.connect_s, r.stream_s, r.frames,
          r.us_per_client_step, r.lossless ? "true" : "false",
          i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"fanout_scaling_ratio\": %.4f,\n", scaling);
    std::fprintf(f, "  \"legacy_vs_epoll_ratio\": %.4f,\n", legacy_ratio);
    std::fprintf(f,
                 "  \"wan_model\": {\"%s_ms_per_frame\": %.3f, "
                 "\"%s_ms_per_frame\": %.3f}\n",
                 nasa.name.c_str(), nasa_frame_s * 1e3, japan.name.c_str(),
                 japan_frame_s * 1e3);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!ok) {
    std::fprintf(stderr, "FAIL: at least one run was not lossless\n");
    return 1;
  }
  return 0;
}
