// tvviz — command-line front end to the library. Subcommands cover the
// workflows a user of the paper's system runs: materializing datasets,
// rendering stills, playing a remote session, choosing a partitioning,
// planning previews and comparing codecs.
//
//   tvviz info
//   tvviz materialize --dataset jet --scale 4 --steps 16 --dir data [--stripes 4]
//   tvviz render      --dataset jet --step 75 --size 256 --out jet.ppm
//                     [--renderer shearwarp] [--azimuth 0.6] [--elevation 0.35]
//   tvviz play        --dataset jet --processors 6 --groups 2 --steps 8
//                     [--codec jpeg+lzo] [--size 128] [--outdir frames]
//   tvviz hub         --dataset jet --clients 3 [--tcp] [--slow-client 10]
//   tvviz relay       --upstream-port P [--listen-port P] [--edge-id NAME]
//   tvviz sweep       --processors 32 [--machine rwcp|o2k] [--steps 128]
//   tvviz analyze     --dataset jet --steps 32 [--budget 8]
//   tvviz codecs      [--size 256] [--quality 75]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>

#include "codec/image_codec.hpp"
#include "core/perfmodel.hpp"
#include "fault/fault.hpp"
#include "core/pipesim.hpp"
#include "core/session.hpp"
#include "field/preview.hpp"
#include "field/store.hpp"
#include "field/delta_store.hpp"
#include "field/striped.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "relay/relay.hpp"
#include "render/shearwarp.hpp"
#include "util/flags.hpp"
#include "util/timer.hpp"

using namespace tvviz;

namespace {

field::DatasetDesc dataset_from_flags(const util::Flags& flags) {
  const std::string name = flags.get("dataset", "jet");
  const int scale = static_cast<int>(flags.get_int("scale", 1));
  const int steps = static_cast<int>(flags.get_int("steps", 0));
  field::DatasetDesc desc;
  if (name == "jet")
    desc = field::turbulent_jet_desc();
  else if (name == "vortex")
    desc = field::turbulent_vortex_desc();
  else if (name == "mixing")
    desc = field::shock_mixing_desc();
  else
    throw std::invalid_argument("unknown dataset '" + name +
                                "' (jet|vortex|mixing)");
  if (scale > 1 || steps > 0)
    desc = field::scaled(desc, std::max(1, scale),
                         steps > 0 ? steps : desc.steps);
  return desc;
}

render::TransferFunction colormap_for(const field::DatasetDesc& desc) {
  switch (desc.kind) {
    case field::DatasetKind::kTurbulentVortex:
      return render::TransferFunction::dense_cool_warm();
    case field::DatasetKind::kShockMixing:
      return render::TransferFunction::shock();
    default:
      return render::TransferFunction::fire();
  }
}

int cmd_info(const util::Flags&) {
  std::printf("datasets (paper presets; shrink with --scale/--steps):\n");
  for (const auto& desc :
       {field::turbulent_jet_desc(), field::turbulent_vortex_desc(),
        field::shock_mixing_desc()}) {
    std::printf("  %-18s %4d x %3d x %3d, %3d steps, %7.1f MB/step\n",
                field::dataset_name(desc.kind), desc.dims.nx, desc.dims.ny,
                desc.dims.nz, desc.steps,
                static_cast<double>(desc.bytes_per_step()) / 1e6);
  }
  std::printf("\ncodecs: ");
  for (const auto& name : codec::table1_codec_names())
    std::printf("%s ", name.c_str());
  std::printf("rle framediff mpeg collective-jpeg\n");
  std::printf("machine profiles: rwcp (Japan cluster), o2k (NASA Ames)\n");
  std::printf("colormaps: fire dense shock\n");
  return 0;
}

int cmd_materialize(const util::Flags& flags) {
  const auto desc = dataset_from_flags(flags);
  const std::filesystem::path dir = flags.get("dir", "data");
  const int stripes = static_cast<int>(flags.get_int("stripes", 0));
  const bool delta = flags.get_bool("delta", false);
  util::WallTimer timer;
  std::size_t bytes = 0;
  std::string layout = "raw steps";
  if (delta) {
    const auto precision = flags.get_bool("quantize", false)
                               ? field::DeltaVolumeStore::Precision::kQuantized8
                               : field::DeltaVolumeStore::Precision::kFloat32;
    field::DeltaVolumeStore store(
        dir, static_cast<int>(flags.get_int("key-interval", 16)), 5, precision);
    const auto [raw, stored] = store.materialize(desc);
    bytes = stored;
    layout = "differential (" +
             std::string(flags.get_bool("quantize", false) ? "8-bit" : "float") +
             ", " + std::to_string(static_cast<int>(
                        100.0 * (1.0 - static_cast<double>(stored) / raw))) +
             "% smaller)";
  } else if (stripes > 0) {
    field::StripedVolumeStore store(dir, stripes);
    bytes = store.materialize(desc);
    layout = std::to_string(stripes) + " stripes";
  } else {
    field::VolumeStore store(dir);
    bytes = store.materialize(desc);
  }
  std::printf("materialized %s: %d steps, %.1f MB (%s) -> %s in %.1f s\n",
              field::dataset_name(desc.kind), desc.steps,
              static_cast<double>(bytes) / 1e6, layout.c_str(),
              dir.string().c_str(), timer.seconds());
  return 0;
}

int cmd_render(const util::Flags& flags) {
  const auto desc = dataset_from_flags(flags);
  const int step = static_cast<int>(flags.get_int("step", desc.steps / 2));
  const int size = static_cast<int>(flags.get_int("size", 256));
  const std::string out = flags.get("out", "frame.ppm");
  const std::string renderer = flags.get("renderer", "raycast");

  const auto volume = field::generate(desc, step);
  const auto tf = colormap_for(desc);
  const render::Camera camera(size, size, flags.get_double("azimuth", 0.6),
                              flags.get_double("elevation", 0.35),
                              flags.get_double("zoom", 1.0));
  util::WallTimer timer;
  render::Image frame;
  if (renderer == "shearwarp") {
    render::ShearWarpRenderer sw;
    frame = sw.render(sw.preprocess(volume, tf), camera);
  } else {
    render::RayCaster caster;
    frame = caster.render_full(volume, camera, tf,
                               flags.get_bool("space-leap", true));
  }
  const double t = timer.seconds();
  frame.write_ppm(out);

  const std::string codec_name = flags.get("codec", "jpeg+lzo");
  const auto codec = codec::make_image_codec(
      codec_name, static_cast<int>(flags.get_int("quality", 75)));
  const auto packed = codec->encode(frame);
  std::printf("%s step %d -> %s (%dx%d, %s, %.2f s); %s: %zu bytes "
              "(%.1f%% reduction)\n",
              field::dataset_name(desc.kind), step, out.c_str(), size, size,
              renderer.c_str(), t, codec_name.c_str(), packed.size(),
              100.0 * (1.0 - static_cast<double>(packed.size()) /
                                 (static_cast<double>(size) * size * 3)));
  return 0;
}

int cmd_play(const util::Flags& flags) {
  core::SessionConfig cfg;
  cfg.dataset = dataset_from_flags(flags);
  if (cfg.dataset.dims.voxels() > 64ull << 20)
    std::printf("note: large dataset; consider --scale\n");
  cfg.processors = static_cast<int>(flags.get_int("processors", 4));
  cfg.groups = static_cast<int>(flags.get_int("groups", 2));
  cfg.image_width = cfg.image_height =
      static_cast<int>(flags.get_int("size", 128));
  cfg.codec = flags.get("codec", "jpeg+lzo");
  cfg.jpeg_quality = static_cast<int>(flags.get_int("quality", 75));
  cfg.colormap = cfg.dataset.kind == field::DatasetKind::kTurbulentVortex
                     ? "dense"
                 : cfg.dataset.kind == field::DatasetKind::kShockMixing
                     ? "shock"
                     : "fire";
  cfg.azimuth_per_step = flags.get_double("spin", 0.0);
  if (flags.has("store")) cfg.store_dir = flags.get("store", "data");
  cfg.io_stripes = static_cast<int>(flags.get_int("stripes", 0));
  cfg.wait_for_store = flags.get_bool("follow", false);
  cfg.use_tcp = flags.get_bool("tcp", false);
  cfg.load_balanced = flags.get_bool("balance", false);
  if (flags.get("compression", "") == "pieces")
    cfg.compression = core::SessionConfig::Compression::kParallelPieces;
  if (flags.get("compression", "") == "collective")
    cfg.compression = core::SessionConfig::Compression::kCollective;
  const bool save = flags.has("outdir");
  cfg.keep_frames = save;

  const auto result = core::run_session(cfg);
  std::printf("frames: %zu | startup %.3f s | overall %.3f s | "
              "inter-frame %.3f s (%.1f fps) | wire %.1f kB (%.1fx reduction)\n",
              result.frames.size(), result.metrics.startup_latency,
              result.metrics.overall_time, result.metrics.inter_frame_delay,
              result.metrics.frames_per_second(),
              static_cast<double>(result.wire_bytes) / 1024.0,
              static_cast<double>(result.raw_bytes) /
                  static_cast<double>(std::max<std::uint64_t>(1, result.wire_bytes)));
  if (save) {
    const std::filesystem::path outdir = flags.get("outdir", "frames");
    std::filesystem::create_directories(outdir);
    for (std::size_t i = 0; i < result.displayed.size(); ++i) {
      char name[32];
      std::snprintf(name, sizeof name, "frame_%04zu.ppm", i);
      result.displayed[i].write_ppm(outdir / name);
    }
    std::printf("wrote %zu frames to %s/\n", result.displayed.size(),
                outdir.string().c_str());
  }
  return 0;
}

int cmd_hub(const util::Flags& flags) {
  core::SessionConfig cfg;
  cfg.dataset = dataset_from_flags(flags);
  cfg.processors = static_cast<int>(flags.get_int("processors", 4));
  cfg.groups = static_cast<int>(flags.get_int("groups", 2));
  cfg.image_width = cfg.image_height =
      static_cast<int>(flags.get_int("size", 128));
  cfg.codec = flags.get("codec", "jpeg+lzo");
  cfg.jpeg_quality = static_cast<int>(flags.get_int("quality", 75));
  cfg.use_hub = true;
  cfg.use_tcp = flags.get_bool("tcp", false);
  cfg.hub_clients = static_cast<int>(flags.get_int("clients", 3));
  cfg.hub_cache_steps =
      static_cast<std::size_t>(flags.get_int("cache-steps", 32));
  cfg.hub_queue_frames =
      static_cast<std::size_t>(flags.get_int("queue-frames", 8));
  cfg.hub_heartbeat_timeout_s = flags.get_double("heartbeat-timeout", 0.0);
  cfg.hub_slow_client_scale = flags.get_double("slow-client", 0.0);
  cfg.adaptive_target_frame_s = flags.get_double("adaptive", 0.0);

  const auto result = core::run_session(cfg);
  std::printf("frames: %zu | startup %.3f s | overall %.3f s | "
              "inter-frame %.3f s (%.1f fps) | wire %.1f kB\n",
              result.frames.size(), result.metrics.startup_latency,
              result.metrics.overall_time, result.metrics.inter_frame_delay,
              result.metrics.frames_per_second(),
              static_cast<double>(result.wire_bytes) / 1024.0);
  std::printf("%-12s %-10s %10s %10s %10s %10s\n", "client", "state",
              "delivered", "skipped", "resumed", "last-ack");
  for (const auto& c : result.hub_client_stats)
    std::printf("%-12s %-10s %10llu %10llu %10llu %10d\n", c.id.c_str(),
                c.connected ? "connected" : "gone",
                static_cast<unsigned long long>(c.messages_delivered),
                static_cast<unsigned long long>(c.steps_skipped),
                static_cast<unsigned long long>(c.messages_resumed),
                c.last_acked_step);
  if (cfg.adaptive_target_frame_s > 0.0)
    std::printf("adaptive codec switches: %d\n",
                result.adaptive_codec_switches);
  return 0;
}

int cmd_relay(const util::Flags& flags) {
  const int upstream = static_cast<int>(flags.get_int("upstream-port", 0));
  if (upstream <= 0) {
    std::fprintf(stderr,
                 "tvviz relay: --upstream-port is required (the root hub's "
                 "viewer port)\n");
    return 2;
  }
  relay::EdgeHubConfig cfg;
  cfg.upstream_port = upstream;
  cfg.listen_port = static_cast<int>(flags.get_int("listen-port", 0));
  cfg.edge_id = flags.get("edge-id", "edge");
  cfg.tree_depth = static_cast<int>(flags.get_int("depth", 1));
  cfg.hub.cache_steps =
      static_cast<std::size_t>(flags.get_int("cache-steps", 32));
  cfg.hub.client_queue_frames =
      static_cast<std::size_t>(flags.get_int("queue-frames", 8));
  relay::EdgeHub edge(cfg);
  std::printf("edge '%s' up: upstream 127.0.0.1:%d -> viewers on port %d\n",
              edge.upstream_id().c_str(), upstream, edge.port());

  // Serve until the root signs off (or --duration seconds, for scripting).
  const double duration = flags.get_double("duration", 0.0);
  util::WallTimer clock;
  while (!edge.stream_ended() &&
         (duration <= 0.0 || clock.seconds() < duration))
    std::this_thread::sleep_for(std::chrono::milliseconds(200));

  const auto s = edge.stats();
  std::printf("refs %llu (hits %llu, misses %llu) | saved %.1f kB | "
              "forwarded %llu | upstream %.1f kB, %llu reconnects\n",
              static_cast<unsigned long long>(s.refs_seen),
              static_cast<unsigned long long>(s.ref_hits),
              static_cast<unsigned long long>(s.ref_misses),
              static_cast<double>(s.fetch_bytes_saved) / 1024.0,
              static_cast<unsigned long long>(s.frames_forwarded),
              static_cast<double>(s.upstream_bytes) / 1024.0,
              static_cast<unsigned long long>(s.upstream_reconnects));
  edge.shutdown();
  return 0;
}

int cmd_sweep(const util::Flags& flags) {
  core::PipelineConfig cfg;
  cfg.processors = static_cast<int>(flags.get_int("processors", 32));
  cfg.dataset = dataset_from_flags(flags);
  cfg.steps_limit = static_cast<int>(flags.get_int("sim-steps", 128));
  cfg.image_width = cfg.image_height =
      static_cast<int>(flags.get_int("size", 256));
  cfg.costs = flags.get("machine", "rwcp") == "o2k"
                  ? core::StageCosts::o2k_paper()
                  : core::StageCosts::rwcp_paper();
  cfg.codec = core::CodecProfile::paper(flags.get("codec", "jpeg+lzo"));
  cfg.io_servers = static_cast<int>(flags.get_int("io-servers", 1));

  std::printf("%-6s %-12s %-12s %-12s\n", "L", "overall", "startup",
              "inter-frame");
  int best = 1;
  double best_t = 1e300;
  for (int l = 1; l <= cfg.processors; l *= 2) {
    cfg.groups = l;
    const auto r = core::simulate_pipeline(cfg);
    std::printf("%-6d %8.1f s %10.2f s %10.2f s\n", l,
                r.metrics.overall_time, r.metrics.startup_latency,
                r.metrics.inter_frame_delay);
    if (r.metrics.overall_time < best_t) {
      best_t = r.metrics.overall_time;
      best = l;
    }
  }
  std::printf("recommended partitions: %d (analytic model: %d)\n", best,
              core::optimal_partitions(cfg));
  return 0;
}

int cmd_analyze(const util::Flags& flags) {
  const auto desc = dataset_from_flags(flags);
  const auto summary = field::TemporalSummary::analyze(
      desc, static_cast<int>(flags.get_int("probes", 1024)));
  std::printf("%s: %d steps, total change %.3f\n",
              field::dataset_name(desc.kind), summary.steps(),
              summary.total_change());
  std::printf("step deltas: ");
  for (int s = 0; s < summary.steps(); ++s)
    std::printf("%.3f ", summary.delta(s));
  std::printf("\n");
  const int budget = static_cast<int>(flags.get_int("budget", 8));
  const auto plan = summary.select_budget(budget);
  std::printf("preview plan (budget %d): ", budget);
  for (int s : plan) std::printf("%d ", s);
  std::printf("\n(pass these to the session's step_map for preview mode)\n");
  return 0;
}

int cmd_codecs(const util::Flags& flags) {
  const auto desc = dataset_from_flags(flags);
  const int size = static_cast<int>(flags.get_int("size", 256));
  const int quality = static_cast<int>(flags.get_int("quality", 75));
  render::RayCaster caster;
  const auto frame =
      caster.render_full(field::generate(desc, desc.steps / 2),
                         render::Camera(size, size), colormap_for(desc), true);
  std::printf("%-12s %12s %10s %12s %12s %10s\n", "codec", "bytes", "ratio",
              "encode", "decode", "psnr");
  for (const auto& name : codec::table1_codec_names()) {
    const auto codec = codec::make_image_codec(name, quality);
    util::WallTimer te;
    const auto packed = codec->encode(frame);
    const double enc = te.seconds();
    util::WallTimer td;
    const auto out = codec->decode(packed);
    const double dec = td.seconds();
    const double psnr = render::psnr(frame, out);
    std::printf("%-12s %12zu %9.1fx %10.1f ms %10.1f ms %9.1f\n",
                name.c_str(), packed.size(),
                static_cast<double>(size) * size * 3 / packed.size(),
                enc * 1e3, dec * 1e3, psnr);
  }
  return 0;
}

void usage() {
  std::printf(
      "tvviz — remote parallel visualization of time-varying volume data\n"
      "usage: tvviz <command> [--flags]\n"
      "commands:\n"
      "  info          list datasets, codecs and machine profiles\n"
      "  materialize   write a dataset's time steps to a (striped) store\n"
      "  render        render one time step to a PPM\n"
      "  play          run the full remote pipeline and report §3 metrics\n"
      "  hub           play through the multi-client hub: --clients N,\n"
      "                [--tcp] [--slow-client SCALE] [--cache-steps N]\n"
      "                [--queue-frames N] [--heartbeat-timeout S]\n"
      "                [--adaptive SECONDS-PER-FRAME]\n"
      "  relay         run an edge hub of the relay tree: subscribe to\n"
      "                --upstream-port, serve viewers from the edge cache\n"
      "                [--listen-port P] [--edge-id NAME] [--depth N]\n"
      "                [--cache-steps N] [--queue-frames N] [--duration S]\n"
      "  sweep         sweep the processor partitioning (Figure 6 tool)\n"
      "  analyze       temporal summary + preview plan (§7.1)\n"
      "  codecs        compare the compressors on a rendered frame\n"
      "observability (any command):\n"
      "  --trace <file>          record pipeline spans, write Chrome\n"
      "                          trace_event JSON (Perfetto-loadable)\n"
      "  --counters-json <file>  dump the counter registry as JSON\n"
      "chaos testing (any command):\n"
      "  --fault-seed <N>        inject seeded latency faults (send delays,\n"
      "                          receive stalls) into every TCP connection;\n"
      "                          the same seed replays the same faults\n"
      "                          (counted under net.fault.*)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  const util::Flags flags(argc - 1, argv + 1);
  const std::string trace_out = flags.get("trace", "");
  const std::string counters_out = flags.get("counters-json", "");
  if (!trace_out.empty()) obs::enable_tracing(true);
  // Seeded latency-only chaos for any command that opens TCP connections
  // (play --tcp, hub --tcp): frames are delayed/stalled, never lost.
  std::optional<fault::ScopedFaultPlan> chaos;
  const auto fault_seed =
      static_cast<std::uint64_t>(flags.get_int("fault-seed", 0));
  if (fault_seed != 0)
    chaos.emplace(fault::FaultPlan::latency_chaos(fault_seed));
  const auto dump_observability = [&] {
    if (!trace_out.empty()) {
      if (obs::write_chrome_trace_file(trace_out))
        std::printf("trace written to %s\n", trace_out.c_str());
      else
        std::fprintf(stderr, "failed to write trace to %s\n",
                     trace_out.c_str());
    }
    if (!counters_out.empty()) {
      if (obs::write_counters_json_file(counters_out))
        std::printf("counters written to %s\n", counters_out.c_str());
      else
        std::fprintf(stderr, "failed to write counters to %s\n",
                     counters_out.c_str());
    }
  };
  try {
    int rc = 2;
    if (command == "info")
      rc = cmd_info(flags);
    else if (command == "materialize")
      rc = cmd_materialize(flags);
    else if (command == "render")
      rc = cmd_render(flags);
    else if (command == "play")
      rc = cmd_play(flags);
    else if (command == "hub")
      rc = cmd_hub(flags);
    else if (command == "relay")
      rc = cmd_relay(flags);
    else if (command == "sweep")
      rc = cmd_sweep(flags);
    else if (command == "analyze")
      rc = cmd_analyze(flags);
    else if (command == "codecs")
      rc = cmd_codecs(flags);
    else {
      std::fprintf(stderr, "unknown command '%s'\n\n", command.c_str());
      usage();
      return 2;
    }
    dump_observability();
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tvviz %s: %s\n", command.c_str(), e.what());
    return 1;
  }
}
