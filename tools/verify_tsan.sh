#!/bin/sh
# Build the tree with ThreadSanitizer and run the concurrency-heavy suites:
# the vmp messaging layer, the network daemon/queues, the TCP transport,
# the multi-client hub, the relay tree, the observability registries, and
# the shared-buffer pool (concurrent checkout/return).
#
# Usage: tools/verify_tsan.sh [--static] [build-dir]
#   --static  preflight the compile-time concurrency contracts first
#             (invariant linter + clang-tidy gate via
#             tools/run_static_analysis.sh, and a -Werror=thread-safety
#             build when clang is available) — catches lock-discipline
#             violations in seconds before the minutes-long TSan run.
set -e

cd "$(dirname "$0")/.."

if [ "$1" = "--static" ]; then
  shift
  sh tools/run_static_analysis.sh
  if command -v clang++ >/dev/null 2>&1; then
    cmake -B build-threadsafety -S . \
      -DCMAKE_CXX_COMPILER=clang++ -DTVVIZ_THREAD_SAFETY=ON
    cmake --build build-threadsafety -j
  else
    echo "verify_tsan: clang++ not found; skipping the -Werror=thread-safety" \
         "build (the CI static-analysis job covers it)" >&2
  fi
fi

BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DTVVIZ_SANITIZE=thread
cmake --build "$BUILD_DIR" -j --target \
  vmp_test net_test obs_test tcp_test hub_test relay_test util_test

cd "$BUILD_DIR"
ctest -L 'vmp_test|net_test|obs_test|tcp_test|hub_test|relay_test|util_test' --output-on-failure -j 4
