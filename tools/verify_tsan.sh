#!/bin/sh
# Build the tree with ThreadSanitizer and run the concurrency-heavy suites:
# the vmp messaging layer, the network daemon/queues, the TCP transport,
# the multi-client hub, the observability registries, and the shared-buffer
# pool (concurrent checkout/return).
# Usage: tools/verify_tsan.sh [build-dir]
set -e

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DTVVIZ_SANITIZE=thread
cmake --build "$BUILD_DIR" -j --target \
  vmp_test net_test obs_test tcp_test hub_test util_test

cd "$BUILD_DIR"
ctest -L 'vmp_test|net_test|obs_test|tcp_test|hub_test|util_test' --output-on-failure -j 4
