#!/usr/bin/env python3
"""Bench-regression gate for CI.

Compares a fresh ablation_zero_copy JSON report against the committed
baseline (BENCH_zero_copy.json) and fails when the single-client
inter-frame delay regressed by more than the allowed fraction.

Raw millisecond numbers are machine-dependent (CI runners are not the
machine the baseline was recorded on), so the gated metric is the
within-run ratio zero/seed (`single_client_delay_ratio`): both paths run
on the same machine in the same process, so their ratio cancels host
speed and isolates the zero-copy path's relative cost. A regression in
the frame path shows up as this ratio creeping up.

Usage:
    bench_gate.py --fresh out.json --baseline BENCH_zero_copy.json \
                  [--max-regression 0.25]

Exit status: 0 = within budget, 1 = regression (or malformed input).
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        print(f"bench_gate: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", required=True,
                        help="JSON report from this run's ablation_zero_copy")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON (BENCH_zero_copy.json)")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional increase of the "
                             "single-client delay ratio (default 0.25)")
    args = parser.parse_args()

    fresh = load(args.fresh)
    baseline = load(args.baseline)

    for name, report in (("fresh", fresh), ("baseline", baseline)):
        if "single_client_delay_ratio" not in report:
            print(f"bench_gate: {name} report has no "
                  "single_client_delay_ratio", file=sys.stderr)
            sys.exit(1)

    # Sanity: every run in the fresh report actually delivered frames.
    for run in fresh.get("runs", []):
        if run.get("frames", 0) <= 0:
            print(f"bench_gate: fresh run delivered no frames: {run}",
                  file=sys.stderr)
            sys.exit(1)

    fresh_ratio = float(fresh["single_client_delay_ratio"])
    base_ratio = float(baseline["single_client_delay_ratio"])
    if base_ratio <= 0.0:
        print(f"bench_gate: baseline ratio {base_ratio} is not positive",
              file=sys.stderr)
        sys.exit(1)

    regression = fresh_ratio / base_ratio - 1.0
    verdict = "OK" if regression <= args.max_regression else "REGRESSION"
    print(f"bench_gate: single_client_delay_ratio fresh={fresh_ratio:.4f} "
          f"baseline={base_ratio:.4f} change={regression:+.1%} "
          f"(budget +{args.max_regression:.0%}) -> {verdict}")
    if verdict != "OK":
        print("bench_gate: the zero-copy path's single-client inter-frame "
              "delay regressed past the budget; investigate before merging.",
              file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
