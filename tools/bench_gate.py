#!/usr/bin/env python3
"""Bench-regression gate for CI.

Compares a fresh ablation JSON report against a committed baseline and
fails when the gated metric regressed by more than the allowed fraction.

Raw millisecond numbers are machine-dependent (CI runners are not the
machine the baseline was recorded on), so every gated metric is a
within-run ratio: both sides of the ratio run on the same machine in the
same process, so host speed cancels and the metric isolates the relative
cost of the path under test.

Supported metrics (--metric):

  single_client_delay_ratio   ablation_zero_copy vs BENCH_zero_copy.json:
                              zero-copy / seed single-client inter-frame
                              delay.  A frame-path regression shows up as
                              this ratio creeping up.

  fanout_scaling_ratio        ablation_hub_epoll vs BENCH_hub_epoll.json:
                              per-client fan-out cost at the large client
                              count divided by the same cost at the small
                              count.  Epoll-hub scaling regressions (e.g.
                              an O(clients) scan sneaking into the accept
                              or drain path) show up here while absolute
                              us/client stays host-independent.

  root_egress_ratio           ablation_relay_tree vs BENCH_relay_tree.json:
                              root egress bytes with the relay tree at the
                              large viewer count divided by the same bytes
                              at the small count.  ~1.0 while the edges
                              dedup correctly (root pays per edge, not per
                              viewer); a relay regression that re-ships
                              payloads per viewer drags it toward the
                              direct-attach ratio (viewers_large/small).

  jpeg_encode_speedup         ablation_codec_simd vs BENCH_codec_simd.json:
                              MB/s of the tiled SIMD JPEG engine divided by
                              MB/s of the retained scalar double-precision
                              reference, both timed in the same process.
                              Higher is better: the gate fails when the
                              fresh speedup falls more than the budget
                              below the baseline, or (with --min-value)
                              below an absolute floor such as the 3.0x
                              claim.

Usage:
    bench_gate.py --fresh out.json --baseline BENCH_zero_copy.json \
                  [--metric single_client_delay_ratio] \
                  [--max-regression 0.25] [--min-value 3.0]

Exit status: 0 = within budget, 1 = regression (or malformed input).
"""

import argparse
import json
import sys

METRICS = ("single_client_delay_ratio", "fanout_scaling_ratio",
           "root_egress_ratio", "jpeg_encode_speedup")

# Metrics that are meaningless when frames were lost (a dropped frame
# shrinks egress and fan-out cost alike, flattering the ratio).
LOSSLESS_METRICS = ("fanout_scaling_ratio", "root_egress_ratio")

# Metrics where bigger numbers are good (speedups); the rest are costs.
HIGHER_IS_BETTER = ("jpeg_encode_speedup",)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        print(f"bench_gate: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(1)


def sanity_check_runs(fresh, metric):
    """Every run in the fresh report must have actually delivered frames."""
    for run in fresh.get("runs", []):
        if run.get("frames", 0) <= 0:
            print(f"bench_gate: fresh run delivered no frames: {run}",
                  file=sys.stderr)
            sys.exit(1)
        if metric in LOSSLESS_METRICS and not run.get("lossless", True):
            print(f"bench_gate: fresh fan-out run lost frames: {run}",
                  file=sys.stderr)
            sys.exit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", required=True,
                        help="JSON report from this run's ablation binary")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON")
    parser.add_argument("--metric", default="single_client_delay_ratio",
                        choices=METRICS,
                        help="which within-run ratio to gate "
                             "(default: single_client_delay_ratio)")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional worsening of the gated "
                             "ratio (default 0.25)")
    parser.add_argument("--min-value", type=float, default=None,
                        help="absolute floor the fresh metric must meet "
                             "(higher-is-better metrics only)")
    args = parser.parse_args()

    if args.min_value is not None and args.metric not in HIGHER_IS_BETTER:
        print(f"bench_gate: --min-value only applies to higher-is-better "
              f"metrics, not {args.metric}", file=sys.stderr)
        sys.exit(1)

    fresh = load(args.fresh)
    baseline = load(args.baseline)

    for name, report in (("fresh", fresh), ("baseline", baseline)):
        if args.metric not in report:
            print(f"bench_gate: {name} report has no {args.metric}",
                  file=sys.stderr)
            sys.exit(1)

    sanity_check_runs(fresh, args.metric)

    fresh_ratio = float(fresh[args.metric])
    base_ratio = float(baseline[args.metric])
    if base_ratio <= 0.0:
        print(f"bench_gate: baseline ratio {base_ratio} is not positive",
              file=sys.stderr)
        sys.exit(1)

    # For cost ratios a regression is the fresh ratio rising; for speedups
    # it is the fresh value falling.  Either way, positive = worse.
    if args.metric in HIGHER_IS_BETTER:
        if fresh_ratio <= 0.0:
            print(f"bench_gate: fresh value {fresh_ratio} is not positive",
                  file=sys.stderr)
            sys.exit(1)
        regression = base_ratio / fresh_ratio - 1.0
    else:
        regression = fresh_ratio / base_ratio - 1.0
    verdict = "OK" if regression <= args.max_regression else "REGRESSION"
    floor_note = ""
    if args.min_value is not None:
        floor_note = f" floor={args.min_value:.2f}"
        if fresh_ratio < args.min_value:
            verdict = "BELOW FLOOR"
    print(f"bench_gate: {args.metric} fresh={fresh_ratio:.4f} "
          f"baseline={base_ratio:.4f} change={regression:+.1%} "
          f"(budget +{args.max_regression:.0%}{floor_note}) -> {verdict}")
    if verdict != "OK":
        print(f"bench_gate: {args.metric} {verdict.lower()}; "
              "investigate before merging.", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
