#!/usr/bin/env python3
"""Bench-regression gate for CI.

Compares fresh ablation JSON reports against committed baselines and
fails when a gated metric regressed by more than the allowed fraction.

Raw millisecond numbers are machine-dependent (CI runners are not the
machine the baseline was recorded on), so every gated metric is a
within-run ratio: both sides of the ratio run on the same machine in the
same process, so host speed cancels and the metric isolates the relative
cost of the path under test.

Supported metrics:

  single_client_delay_ratio   ablation_zero_copy vs BENCH_zero_copy.json:
                              zero-copy / seed single-client inter-frame
                              delay.  A frame-path regression shows up as
                              this ratio creeping up.

  fanout_scaling_ratio        ablation_hub_epoll vs BENCH_hub_epoll.json:
                              per-client fan-out cost at the large client
                              count divided by the same cost at the small
                              count.  Epoll-hub scaling regressions (e.g.
                              an O(clients) scan sneaking into the accept
                              or drain path) show up here while absolute
                              us/client stays host-independent.

  root_egress_ratio           ablation_relay_tree vs BENCH_relay_tree.json:
                              root egress bytes with the relay tree at the
                              large viewer count divided by the same bytes
                              at the small count.  ~1.0 while the edges
                              dedup correctly (root pays per edge, not per
                              viewer); a relay regression that re-ships
                              payloads per viewer drags it toward the
                              direct-attach ratio (viewers_large/small).

  jpeg_encode_speedup         ablation_codec_simd vs BENCH_codec_simd.json:
                              MB/s of the tiled SIMD JPEG engine divided by
                              MB/s of the retained scalar double-precision
                              reference, both timed in the same process.
                              Higher is better: the gate fails when the
                              fresh speedup falls more than the budget
                              below the baseline, or (with min-value)
                              below an absolute floor such as the 3.0x
                              claim.

  perceived_delay_ratio       ablation_warp vs BENCH_warp.json: mean
                              inter-update gap of the ship-per-frame
                              viewer divided by the warping viewer's, on
                              the same simulated 150 ms trans-Pacific
                              clock.  Higher is better; the >= 5.0 floor
                              is the latency-hiding claim.

Usage (single gate, the original form):
    bench_gate.py --fresh out.json --baseline BENCH_zero_copy.json \
                  [--metric single_client_delay_ratio] \
                  [--max-regression 0.25] [--min-value 3.0]

Usage (consolidated form — many gates, one invocation, one summary):
    bench_gate.py \
      --gate metric=single_client_delay_ratio,fresh=z.json,baseline=BENCH_zero_copy.json \
      --gate metric=jpeg_encode_speedup,fresh=c.json,baseline=BENCH_codec_simd.json,min-value=3.0 \
      --gate metric=perceived_delay_ratio,fresh=w.json,baseline=BENCH_warp.json,min-value=5.0

Each --gate takes comma-separated key=value pairs: metric, fresh and
baseline are required; max-regression (default 0.25) and min-value are
optional.  All gates are evaluated (no short-circuit), a summary table is
printed, and the exit status is 1 if any gate failed.

Exit status: 0 = within budget, 1 = regression (or malformed input).
"""

import argparse
import sys

import json

METRICS = ("single_client_delay_ratio", "fanout_scaling_ratio",
           "root_egress_ratio", "jpeg_encode_speedup",
           "perceived_delay_ratio")

# Metrics that are meaningless when frames were lost (a dropped frame
# shrinks egress and fan-out cost alike, flattering the ratio).
LOSSLESS_METRICS = ("fanout_scaling_ratio", "root_egress_ratio")

# Metrics where bigger numbers are good (speedups); the rest are costs.
HIGHER_IS_BETTER = ("jpeg_encode_speedup", "perceived_delay_ratio")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        print(f"bench_gate: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(1)


def sanity_check_runs(fresh, metric):
    """Every run in the fresh report must have actually delivered frames."""
    for run in fresh.get("runs", []):
        if run.get("frames", 0) <= 0:
            print(f"bench_gate: fresh run delivered no frames: {run}",
                  file=sys.stderr)
            sys.exit(1)
        if metric in LOSSLESS_METRICS and not run.get("lossless", True):
            print(f"bench_gate: fresh fan-out run lost frames: {run}",
                  file=sys.stderr)
            sys.exit(1)


def evaluate_gate(metric, fresh_path, baseline_path, max_regression,
                  min_value):
    """Evaluate one gate; returns a result row for the summary table."""
    fresh = load(fresh_path)
    baseline = load(baseline_path)

    for name, report in (("fresh", fresh), ("baseline", baseline)):
        if metric not in report:
            print(f"bench_gate: {name} report has no {metric}",
                  file=sys.stderr)
            sys.exit(1)

    sanity_check_runs(fresh, metric)

    fresh_ratio = float(fresh[metric])
    base_ratio = float(baseline[metric])
    if base_ratio <= 0.0:
        print(f"bench_gate: baseline ratio {base_ratio} is not positive",
              file=sys.stderr)
        sys.exit(1)

    # For cost ratios a regression is the fresh ratio rising; for speedups
    # it is the fresh value falling.  Either way, positive = worse.
    if metric in HIGHER_IS_BETTER:
        if fresh_ratio <= 0.0:
            print(f"bench_gate: fresh value {fresh_ratio} is not positive",
                  file=sys.stderr)
            sys.exit(1)
        regression = base_ratio / fresh_ratio - 1.0
    else:
        regression = fresh_ratio / base_ratio - 1.0
    verdict = "OK" if regression <= max_regression else "REGRESSION"
    if min_value is not None and fresh_ratio < min_value:
        verdict = "BELOW FLOOR"
    return {
        "metric": metric,
        "fresh": fresh_ratio,
        "baseline": base_ratio,
        "regression": regression,
        "budget": max_regression,
        "floor": min_value,
        "verdict": verdict,
    }


def parse_gate_spec(spec):
    """Parse one --gate value: comma-separated key=value pairs."""
    fields = {}
    for part in spec.split(","):
        if "=" not in part:
            print(f"bench_gate: malformed --gate field '{part}' in '{spec}'",
                  file=sys.stderr)
            sys.exit(1)
        key, value = part.split("=", 1)
        fields[key.strip()] = value.strip()
    unknown = set(fields) - {"metric", "fresh", "baseline", "max-regression",
                             "min-value"}
    if unknown:
        print(f"bench_gate: unknown --gate keys {sorted(unknown)} in "
              f"'{spec}'", file=sys.stderr)
        sys.exit(1)
    for required in ("metric", "fresh", "baseline"):
        if required not in fields:
            print(f"bench_gate: --gate is missing '{required}': '{spec}'",
                  file=sys.stderr)
            sys.exit(1)
    if fields["metric"] not in METRICS:
        print(f"bench_gate: unknown metric '{fields['metric']}' "
              f"(choose from {', '.join(METRICS)})", file=sys.stderr)
        sys.exit(1)
    min_value = (float(fields["min-value"])
                 if "min-value" in fields else None)
    if min_value is not None and fields["metric"] not in HIGHER_IS_BETTER:
        print(f"bench_gate: min-value only applies to higher-is-better "
              f"metrics, not {fields['metric']}", file=sys.stderr)
        sys.exit(1)
    return {
        "metric": fields["metric"],
        "fresh_path": fields["fresh"],
        "baseline_path": fields["baseline"],
        "max_regression": float(fields.get("max-regression", 0.25)),
        "min_value": min_value,
    }


def print_summary(rows):
    header = (f"{'metric':<28} {'fresh':>9} {'baseline':>9} {'change':>8} "
              f"{'budget':>7} {'floor':>6}  verdict")
    print(header)
    print("-" * len(header))
    for r in rows:
        floor = f"{r['floor']:.2f}" if r["floor"] is not None else "-"
        print(f"{r['metric']:<28} {r['fresh']:>9.4f} {r['baseline']:>9.4f} "
              f"{r['regression']:>+8.1%} {r['budget']:>+7.0%} {floor:>6}  "
              f"{r['verdict']}")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--gate", action="append", default=[],
                        metavar="metric=...,fresh=...,baseline=...",
                        help="consolidated gate spec; repeatable — all "
                             "gates run, one summary table, exit 1 if any "
                             "fails")
    parser.add_argument("--fresh",
                        help="JSON report from this run's ablation binary")
    parser.add_argument("--baseline", help="committed baseline JSON")
    parser.add_argument("--metric", default="single_client_delay_ratio",
                        choices=METRICS,
                        help="which within-run ratio to gate "
                             "(default: single_client_delay_ratio)")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional worsening of the gated "
                             "ratio (default 0.25)")
    parser.add_argument("--min-value", type=float, default=None,
                        help="absolute floor the fresh metric must meet "
                             "(higher-is-better metrics only)")
    args = parser.parse_args()

    if args.gate:
        if args.fresh or args.baseline:
            print("bench_gate: use either --gate or --fresh/--baseline, "
                  "not both", file=sys.stderr)
            sys.exit(1)
        rows = [evaluate_gate(**parse_gate_spec(spec)) for spec in args.gate]
        print_summary(rows)
        failed = [r for r in rows if r["verdict"] != "OK"]
        if failed:
            for r in failed:
                print(f"bench_gate: {r['metric']} "
                      f"{r['verdict'].lower()}; investigate before merging.",
                      file=sys.stderr)
            sys.exit(1)
        return

    # Legacy single-gate form.
    if not args.fresh or not args.baseline:
        print("bench_gate: --fresh and --baseline are required without "
              "--gate", file=sys.stderr)
        sys.exit(1)
    if args.min_value is not None and args.metric not in HIGHER_IS_BETTER:
        print(f"bench_gate: --min-value only applies to higher-is-better "
              f"metrics, not {args.metric}", file=sys.stderr)
        sys.exit(1)
    r = evaluate_gate(args.metric, args.fresh, args.baseline,
                      args.max_regression, args.min_value)
    floor_note = (f" floor={r['floor']:.2f}"
                  if r["floor"] is not None else "")
    print(f"bench_gate: {r['metric']} fresh={r['fresh']:.4f} "
          f"baseline={r['baseline']:.4f} change={r['regression']:+.1%} "
          f"(budget +{r['budget']:.0%}{floor_note}) -> {r['verdict']}")
    if r["verdict"] != "OK":
        print(f"bench_gate: {r['metric']} {r['verdict'].lower()}; "
              "investigate before merging.", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
