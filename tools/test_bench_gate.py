#!/usr/bin/env python3
"""Unit tests for the bench_gate.py gating logic (registered as the
``bench_gate_test`` ctest, so the CI gate itself is gated).

Covers the pieces a silent bug would turn into a green-but-meaningless CI
gate: --gate spec parsing (required keys, defaults, unknown keys, the
min-value/higher-is-better restriction), lower- and higher-is-better
regression arithmetic, min-value floors, lossless-run sanity checks, and
the consolidated main() exit behavior."""

from __future__ import annotations

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_gate  # noqa: E402


def write_report(directory, name, payload):
    path = os.path.join(directory, name)
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return path


@contextlib.contextmanager
def captured_exit():
    """Capture stderr and assert the wrapped code calls sys.exit(1)."""
    err = io.StringIO()
    with contextlib.redirect_stderr(err):
        try:
            yield err
        except SystemExit as stop:
            err.exit_code = stop.code  # type: ignore[attr-defined]
            return
    raise AssertionError("expected sys.exit, code ran to completion")


class ParseGateSpecTest(unittest.TestCase):
    def test_minimal_spec_applies_defaults(self):
        spec = bench_gate.parse_gate_spec(
            "metric=single_client_delay_ratio,fresh=f.json,baseline=b.json")
        self.assertEqual(spec["metric"], "single_client_delay_ratio")
        self.assertEqual(spec["fresh_path"], "f.json")
        self.assertEqual(spec["baseline_path"], "b.json")
        self.assertEqual(spec["max_regression"], 0.25)
        self.assertIsNone(spec["min_value"])

    def test_full_spec_with_floor(self):
        spec = bench_gate.parse_gate_spec(
            "metric=jpeg_encode_speedup,fresh=f.json,baseline=b.json,"
            "max-regression=0.5,min-value=3.0")
        self.assertEqual(spec["max_regression"], 0.5)
        self.assertEqual(spec["min_value"], 3.0)

    def test_spaces_around_fields_are_tolerated(self):
        spec = bench_gate.parse_gate_spec(
            " metric=perceived_delay_ratio, fresh=f.json, baseline=b.json")
        self.assertEqual(spec["metric"], "perceived_delay_ratio")

    def test_missing_required_key_exits(self):
        with captured_exit() as err:
            bench_gate.parse_gate_spec("metric=root_egress_ratio,fresh=f.json")
        self.assertIn("missing 'baseline'", err.getvalue())

    def test_unknown_key_exits(self):
        with captured_exit() as err:
            bench_gate.parse_gate_spec(
                "metric=root_egress_ratio,fresh=f,baseline=b,budget=0.1")
        self.assertIn("unknown --gate keys", err.getvalue())

    def test_unknown_metric_exits(self):
        with captured_exit() as err:
            bench_gate.parse_gate_spec(
                "metric=made_up_ratio,fresh=f,baseline=b")
        self.assertIn("unknown metric", err.getvalue())

    def test_malformed_field_exits(self):
        with captured_exit() as err:
            bench_gate.parse_gate_spec("metric=root_egress_ratio,oops")
        self.assertIn("malformed --gate field", err.getvalue())

    def test_min_value_rejected_for_cost_metrics(self):
        # A floor on a lower-is-better ratio would invert its meaning.
        with captured_exit() as err:
            bench_gate.parse_gate_spec(
                "metric=root_egress_ratio,fresh=f,baseline=b,min-value=1.0")
        self.assertIn("min-value only applies", err.getvalue())


class EvaluateGateTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def gate(self, metric, fresh_value, baseline_value, max_regression=0.25,
             min_value=None, fresh_extra=None):
        fresh = {metric: fresh_value, "runs": [{"frames": 10}]}
        if fresh_extra:
            fresh.update(fresh_extra)
        fresh_path = write_report(self.tmp.name, "fresh.json", fresh)
        base_path = write_report(self.tmp.name, "base.json",
                                 {metric: baseline_value})
        return bench_gate.evaluate_gate(metric, fresh_path, base_path,
                                        max_regression, min_value)

    def test_lower_is_better_within_budget(self):
        row = self.gate("single_client_delay_ratio", 1.1, 1.0)
        self.assertEqual(row["verdict"], "OK")
        self.assertAlmostEqual(row["regression"], 0.1)

    def test_lower_is_better_regression(self):
        # Cost ratio rising past the budget: 1.0 -> 1.4 is +40% > 25%.
        row = self.gate("single_client_delay_ratio", 1.4, 1.0)
        self.assertEqual(row["verdict"], "REGRESSION")

    def test_lower_is_better_improvement_is_negative_change(self):
        row = self.gate("root_egress_ratio", 0.8, 1.0)
        self.assertEqual(row["verdict"], "OK")
        self.assertLess(row["regression"], 0.0)

    def test_higher_is_better_regression_is_a_fall(self):
        # Speedup falling 4.0 -> 3.0 is a +33% regression: the arithmetic
        # must invert for higher-is-better metrics.
        row = self.gate("jpeg_encode_speedup", 3.0, 4.0)
        self.assertEqual(row["verdict"], "REGRESSION")
        self.assertAlmostEqual(row["regression"], 4.0 / 3.0 - 1.0)

    def test_higher_is_better_rise_is_ok(self):
        row = self.gate("jpeg_encode_speedup", 5.0, 4.0)
        self.assertEqual(row["verdict"], "OK")
        self.assertLess(row["regression"], 0.0)

    def test_min_value_floor_overrides_ok_budget(self):
        # Baseline 2.0 -> fresh 2.4 is an improvement, but below the
        # absolute 3.0x claim: the floor must still fail it.
        row = self.gate("jpeg_encode_speedup", 2.4, 2.0, min_value=3.0)
        self.assertEqual(row["verdict"], "BELOW FLOOR")

    def test_min_value_met(self):
        row = self.gate("jpeg_encode_speedup", 3.2, 3.0, min_value=3.0)
        self.assertEqual(row["verdict"], "OK")

    def test_zero_baseline_exits(self):
        with captured_exit() as err:
            self.gate("single_client_delay_ratio", 1.0, 0.0)
        self.assertIn("not positive", err.getvalue())

    def test_missing_metric_in_report_exits(self):
        fresh_path = write_report(self.tmp.name, "fresh.json",
                                  {"other": 1.0, "runs": []})
        base_path = write_report(self.tmp.name, "base.json",
                                 {"single_client_delay_ratio": 1.0})
        with captured_exit() as err:
            bench_gate.evaluate_gate("single_client_delay_ratio", fresh_path,
                                     base_path, 0.25, None)
        self.assertIn("has no single_client_delay_ratio", err.getvalue())

    def test_frameless_run_exits(self):
        fresh = {"single_client_delay_ratio": 1.0, "runs": [{"frames": 0}]}
        fresh_path = write_report(self.tmp.name, "fresh.json", fresh)
        base_path = write_report(self.tmp.name, "base.json",
                                 {"single_client_delay_ratio": 1.0})
        with captured_exit() as err:
            bench_gate.evaluate_gate("single_client_delay_ratio", fresh_path,
                                     base_path, 0.25, None)
        self.assertIn("delivered no frames", err.getvalue())

    def test_lossy_run_exits_for_lossless_metric(self):
        fresh = {"fanout_scaling_ratio": 1.0,
                 "runs": [{"frames": 10, "lossless": False}]}
        fresh_path = write_report(self.tmp.name, "fresh.json", fresh)
        base_path = write_report(self.tmp.name, "base.json",
                                 {"fanout_scaling_ratio": 1.0})
        with captured_exit() as err:
            bench_gate.evaluate_gate("fanout_scaling_ratio", fresh_path,
                                     base_path, 0.25, None)
        self.assertIn("lost frames", err.getvalue())

    def test_lossy_run_tolerated_for_cost_metric(self):
        row = self.gate("single_client_delay_ratio", 1.0, 1.0,
                        fresh_extra={"runs": [{"frames": 10,
                                               "lossless": False}]})
        self.assertEqual(row["verdict"], "OK")


class MainConsolidatedTest(unittest.TestCase):
    """main() with --gate: every gate evaluated, exit 1 if any failed."""

    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def run_main(self, argv):
        out, err = io.StringIO(), io.StringIO()
        code = 0
        old_argv = sys.argv
        sys.argv = ["bench_gate.py"] + argv
        try:
            with contextlib.redirect_stdout(out), \
                 contextlib.redirect_stderr(err):
                try:
                    bench_gate.main()
                except SystemExit as stop:
                    code = stop.code
        finally:
            sys.argv = old_argv
        return code, out.getvalue(), err.getvalue()

    def spec(self, metric, fresh_value, baseline_value, extra=""):
        fresh = write_report(
            self.tmp.name, f"fresh_{metric}.json",
            {metric: fresh_value, "runs": [{"frames": 5}]})
        base = write_report(self.tmp.name, f"base_{metric}.json",
                            {metric: baseline_value})
        return f"metric={metric},fresh={fresh},baseline={base}{extra}"

    def test_all_gates_pass(self):
        code, out, _ = self.run_main([
            "--gate", self.spec("single_client_delay_ratio", 1.0, 1.0),
            "--gate", self.spec("jpeg_encode_speedup", 4.0, 4.0,
                                ",min-value=3.0"),
        ])
        self.assertEqual(code, 0)
        self.assertEqual(out.count(" OK"), 2)

    def test_one_failing_gate_fails_but_all_rows_print(self):
        code, out, err = self.run_main([
            "--gate", self.spec("single_client_delay_ratio", 2.0, 1.0),
            "--gate", self.spec("jpeg_encode_speedup", 4.0, 4.0),
        ])
        self.assertEqual(code, 1)
        # No short-circuit: the passing gate's row still prints.
        self.assertIn("jpeg_encode_speedup", out)
        self.assertIn("REGRESSION", out)
        self.assertIn("single_client_delay_ratio regression", err)

    def test_gate_and_legacy_flags_are_exclusive(self):
        code, _, err = self.run_main([
            "--gate", self.spec("single_client_delay_ratio", 1.0, 1.0),
            "--fresh", "x.json",
        ])
        self.assertEqual(code, 1)
        self.assertIn("not both", err)


if __name__ == "__main__":
    unittest.main()
