#!/bin/sh
# Static-analysis gates, in order: the project-invariant linter (regex,
# always runs), the clang-tidy gate (.clang-tidy), and the tvviz-analyzer
# gate (tools/analyzer — AST checks for the zero-copy / event-loop / wire
# contracts, DESIGN.md §18). The clang-based gates run over every src/
# translation unit in compile_commands.json.
#
# Verdicts are cached ccache-style: the key is a content hash of the tool
# (version or binary), its config, the full header set, and the translation
# unit itself, so re-runs over an unchanged tree replay stored verdicts
# instead of re-analyzing (the CI job persists both cache directories
# across runs).
#
# Usage: tools/run_static_analysis.sh [build-dir]
#   CLANG_TIDY=...           override the clang-tidy binary
#   TIDY_CACHE_DIR=...       override the tidy cache (default <build-dir>/tidy-cache)
#   TVVIZ_ANALYZER=...       override the tvviz-analyzer binary
#   ANALYZER_CACHE_DIR=...   override its cache (default <build-dir>/analyzer-cache)
#
# A clang-based gate whose tool is not installed prints a notice and is
# SKIPPED (not failed): the container toolchain is gcc-only, and both gates
# are enforced by the CI static-analysis job, which installs clang + the
# libclang dev packages. The invariant linter needs only python3.
set -e
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tidy}"
total_failures=0

echo "== project-invariant linter =="
python3 tools/lint_invariants.py --repo .

# --------------------------------------------------------------- helpers --

ensure_compile_commands() {
  if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    # Any configure exports compile_commands.json (CMakeLists.txt sets
    # CMAKE_EXPORT_COMPILE_COMMANDS); clang is preferred so the commands
    # carry flags the clang-based tools' bundled driver understands.
    if command -v clang++ >/dev/null 2>&1; then
      cmake -B "$BUILD_DIR" -S . -DCMAKE_CXX_COMPILER=clang++ >/dev/null
    else
      cmake -B "$BUILD_DIR" -S . >/dev/null
    fi
  fi
}

list_src_tus() {
  python3 -c "
import json, sys
entries = json.load(open('$BUILD_DIR/compile_commands.json'))
files = sorted({e['file'] for e in entries if '/src/' in e['file']})
sys.stdout.write('\n'.join(files))
"
}

# ---------------------------------------------------------- clang-tidy ----

CLANG_TIDY="${CLANG_TIDY:-$(command -v clang-tidy || true)}"
if [ -z "$CLANG_TIDY" ]; then
  echo "run_static_analysis: clang-tidy not found; skipping the tidy gate" \
       "(the CI static-analysis job enforces it)" >&2
else
  ensure_compile_commands
  CACHE_DIR="${TIDY_CACHE_DIR:-$BUILD_DIR/tidy-cache}"
  mkdir -p "$CACHE_DIR"

  # Everything a verdict depends on besides the TU itself: tool, config,
  # and the project headers any TU may include.
  GLOBAL_KEY=$({ "$CLANG_TIDY" --version
                 cat .clang-tidy
                 find src -name '*.hpp' -print | LC_ALL=C sort | xargs cat
               } | sha256sum | cut -d' ' -f1)

  FILES=$(list_src_tus)

  echo "== clang-tidy gate ($("$CLANG_TIDY" --version | head -n1)) =="
  failures=0 hits=0 misses=0
  for f in $FILES; do
    key=$({ echo "$GLOBAL_KEY"; echo "$f"; cat "$f"; } | sha256sum | cut -d' ' -f1)
    status_file="$CACHE_DIR/$key.status"
    log_file="$CACHE_DIR/$key.log"
    if [ -f "$status_file" ]; then
      hits=$((hits + 1))
      status=$(cat "$status_file")
    else
      misses=$((misses + 1))
      status=0
      "$CLANG_TIDY" -p "$BUILD_DIR" --quiet "$f" >"$log_file" 2>&1 || status=$?
      echo "$status" >"$status_file"
    fi
    if [ "$status" -ne 0 ]; then
      failures=$((failures + 1))
      echo "--- clang-tidy: $f (exit $status)"
      cat "$log_file"
    fi
  done

  echo "clang-tidy: $((hits + misses)) TUs, $hits cached, $misses analyzed," \
       "$failures with findings"
  total_failures=$((total_failures + failures))
fi

# ------------------------------------------------------- tvviz-analyzer ---

ANALYZER="${TVVIZ_ANALYZER:-}"
if [ -z "$ANALYZER" ] && [ -x "$BUILD_DIR/tools/analyzer/tvviz-analyzer" ]; then
  ANALYZER="$BUILD_DIR/tools/analyzer/tvviz-analyzer"
fi
if [ -z "$ANALYZER" ]; then
  ANALYZER="$(command -v tvviz-analyzer || true)"
fi

if [ -z "$ANALYZER" ] || [ ! -x "$ANALYZER" ]; then
  echo "run_static_analysis: tvviz-analyzer not built; skipping the AST" \
       "gate (cmake builds it where libclang-dev is installed; the CI" \
       "static-analysis job enforces it)" >&2
else
  ensure_compile_commands
  A_CACHE_DIR="${ANALYZER_CACHE_DIR:-$BUILD_DIR/analyzer-cache}"
  mkdir -p "$A_CACHE_DIR"

  # The libTooling binary lives outside an LLVM prefix, so it cannot find
  # the clang builtin headers (<stddef.h> & co.) on its own.
  EXTRA_ARGS=""
  if command -v clang >/dev/null 2>&1; then
    EXTRA_ARGS="--extra-arg=-resource-dir=$(clang -print-resource-dir)"
  fi

  # The binary itself is the "version": any rebuilt check invalidates the
  # cache, matching the tidy gate's tool-version + config hash.
  A_GLOBAL_KEY=$({ cat "$ANALYZER"
                   find src -name '*.hpp' -print | LC_ALL=C sort | xargs cat
                 } | sha256sum | cut -d' ' -f1)

  FILES=$(list_src_tus)

  echo "== tvviz-analyzer gate ($ANALYZER) =="
  failures=0 hits=0 misses=0
  for f in $FILES; do
    key=$({ echo "$A_GLOBAL_KEY"; echo "$f"; cat "$f"; } | sha256sum | cut -d' ' -f1)
    status_file="$A_CACHE_DIR/$key.status"
    log_file="$A_CACHE_DIR/$key.log"
    if [ -f "$status_file" ]; then
      hits=$((hits + 1))
      status=$(cat "$status_file")
    else
      misses=$((misses + 1))
      status=0
      "$ANALYZER" -p "$BUILD_DIR" $EXTRA_ARGS "$f" >"$log_file" 2>&1 || status=$?
      echo "$status" >"$status_file"
    fi
    if [ "$status" -ne 0 ]; then
      failures=$((failures + 1))
      echo "--- tvviz-analyzer: $f (exit $status)"
      cat "$log_file"
    fi
  done

  echo "tvviz-analyzer: $((hits + misses)) TUs, $hits cached, $misses" \
       "analyzed, $failures with findings"
  total_failures=$((total_failures + failures))
fi

[ "$total_failures" -eq 0 ]
