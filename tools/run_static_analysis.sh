#!/bin/sh
# Run the clang-tidy gate (.clang-tidy) over every src/ translation unit in
# compile_commands.json, then the project-invariant linter.
#
# clang-tidy results are cached ccache-style: the key is a content hash of
# the tool version, the .clang-tidy config, the full header set, and the
# translation unit itself, so re-runs over an unchanged tree replay stored
# verdicts instead of re-analyzing (the CI job persists the cache directory
# across runs).
#
# Usage: tools/run_static_analysis.sh [build-dir]
#   CLANG_TIDY=...       override the clang-tidy binary
#   TIDY_CACHE_DIR=...   override the result cache (default <build-dir>/tidy-cache)
#
# When clang-tidy is not installed this prints a notice and SKIPS the tidy
# half (exit 0): the container toolchain is gcc-only, and the gate is
# enforced by the CI static-analysis job, which installs clang. The
# invariant linter needs only python3 and always runs.
set -e
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tidy}"

echo "== project-invariant linter =="
python3 tools/lint_invariants.py --repo .

CLANG_TIDY="${CLANG_TIDY:-$(command -v clang-tidy || true)}"
if [ -z "$CLANG_TIDY" ]; then
  echo "run_static_analysis: clang-tidy not found; skipping the tidy gate" \
       "(the CI static-analysis job enforces it)" >&2
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  # Any configure exports compile_commands.json (CMakeLists.txt sets
  # CMAKE_EXPORT_COMPILE_COMMANDS); clang is preferred so the commands carry
  # flags clang-tidy's bundled driver understands.
  if command -v clang++ >/dev/null 2>&1; then
    cmake -B "$BUILD_DIR" -S . -DCMAKE_CXX_COMPILER=clang++ >/dev/null
  else
    cmake -B "$BUILD_DIR" -S . >/dev/null
  fi
fi

CACHE_DIR="${TIDY_CACHE_DIR:-$BUILD_DIR/tidy-cache}"
mkdir -p "$CACHE_DIR"

# Everything a verdict depends on besides the TU itself: tool, config, and
# the project headers any TU may include.
GLOBAL_KEY=$({ "$CLANG_TIDY" --version
               cat .clang-tidy
               find src -name '*.hpp' -print | LC_ALL=C sort | xargs cat
             } | sha256sum | cut -d' ' -f1)

FILES=$(python3 -c "
import json, sys
entries = json.load(open('$BUILD_DIR/compile_commands.json'))
files = sorted({e['file'] for e in entries if '/src/' in e['file']})
sys.stdout.write('\n'.join(files))
")

echo "== clang-tidy gate ($("$CLANG_TIDY" --version | head -n1)) =="
failures=0 hits=0 misses=0
for f in $FILES; do
  key=$({ echo "$GLOBAL_KEY"; echo "$f"; cat "$f"; } | sha256sum | cut -d' ' -f1)
  status_file="$CACHE_DIR/$key.status"
  log_file="$CACHE_DIR/$key.log"
  if [ -f "$status_file" ]; then
    hits=$((hits + 1))
    status=$(cat "$status_file")
  else
    misses=$((misses + 1))
    status=0
    "$CLANG_TIDY" -p "$BUILD_DIR" --quiet "$f" >"$log_file" 2>&1 || status=$?
    echo "$status" >"$status_file"
  fi
  if [ "$status" -ne 0 ]; then
    failures=$((failures + 1))
    echo "--- clang-tidy: $f (exit $status)"
    cat "$log_file"
  fi
done

echo "clang-tidy: $((hits + misses)) TUs, $hits cached, $misses analyzed," \
     "$failures with findings"
[ "$failures" -eq 0 ]
