#!/usr/bin/env python3
"""Project-invariant linter: checks the contracts the compiler can't.

Five checks, each a build-breaking invariant of this repository:

1. counter-registry  Every metric name passed to ``obs::counter()`` /
                     ``obs::gauge()`` in ``src/`` must appear in the
                     authoritative registry in DESIGN.md (the table between
                     the ``<!-- counter-registry:begin/end -->`` markers),
                     and every registry entry must correspond to a real call
                     site — both directions, with kinds (counter vs gauge)
                     matched.  Dynamically built names (``"codec." + name +
                     ".bytes_in"``) are matched structurally against registry
                     patterns containing ``<placeholder>`` segments.

2. raw-mutex         ``std::mutex`` / ``std::lock_guard`` /
                     ``std::condition_variable`` (and friends) are banned in
                     ``src/``, ``bench/``, and ``tools/tvviz.cpp`` outside
                     ``src/util/mutex.hpp``.  The wrapper types carry the
                     Clang Thread Safety annotations (DESIGN.md §13); a raw
                     mutex is invisible to the analysis and silently
                     re-opens the holes this layer closed — and bench
                     harnesses share fixtures with the library, so they are
                     held to the same rule.

3. fault-wall-clock  ``src/fault`` is the deterministic fault-injection
                     subsystem: decisions must depend only on the seeded RNG
                     and the observed traffic, never on wall-clock time.
                     Reading a wall clock (``system_clock``, ``time()``,
                     ``gettimeofday``, ``util::WallTimer``...) is banned
                     there.  ``steady_clock`` deadlines and ``sleep_for``
                     (which *spend* time but don't *branch* on it) are
                     allowed.

4. fnv-constants     The FNV-1a magic numbers may appear in ``src/`` only
                     inside ``util/hash.hpp``.  A ContentId computed by one
                     build must match the one another build recomputes from
                     the same bytes, so every payload hash goes through
                     ``util::fnv1a`` — a stray re-implementation forks the
                     hash the moment someone "fixes" one copy.

5. simd-intrinsics   CPU intrinsics (``<immintrin.h>`` and friends,
                     ``_mm*_...`` / ``v...q_...`` calls) may appear in
                     ``src/`` only inside ``util/simd.hpp``.  Every other
                     file calls the dispatched wrappers, which keep the
                     scalar tier bit-identical and runtime-selectable
                     (``TVVIZ_SIMD=scalar``); a stray intrinsic call site
                     silently escapes both the parity tests and the
                     dispatch override.

Run directly (``tools/lint_invariants.py [--repo PATH]``) or via ctest /
CI, where it is registered as the ``lint_invariants`` test.  Exit status is
the number of violation classes that fired (0 = clean).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# --------------------------------------------------------------------------
# Shared helpers


def strip_comments(text: str) -> str:
    """Remove C++ comments, preserving line numbers.

    Needed because doc comments legitimately *mention* banned spellings
    (e.g. the usage example in obs/counters.hpp names a counter).
    """

    def blank(match: re.Match) -> str:
        return "\n" * match.group(0).count("\n")

    text = re.sub(r"/\*.*?\*/", blank, text, flags=re.S)
    text = re.sub(r"//[^\n]*", "", text)
    return text


def source_files(src: pathlib.Path):
    for path in sorted(src.rglob("*")):
        if path.suffix in (".cpp", ".hpp", ".h", ".cc"):
            yield path


class Violations:
    def __init__(self) -> None:
        self.count = 0

    def report(self, where: str, message: str) -> None:
        print(f"lint_invariants: {where}: {message}", file=sys.stderr)
        self.count += 1


# --------------------------------------------------------------------------
# Check 1: counter registry <-> code cross-check

REGISTRY_BEGIN = "<!-- counter-registry:begin -->"
REGISTRY_END = "<!-- counter-registry:end -->"
PLACEHOLDER = re.compile(r"<[^<>]+>")
CALL = re.compile(r"\bobs::(counter|gauge)\s*\(")


def parse_registry(design: pathlib.Path, out: Violations):
    """Return {(kind, name): is_pattern} from the DESIGN.md table."""
    text = design.read_text(encoding="utf-8")
    begin = text.find(REGISTRY_BEGIN)
    end = text.find(REGISTRY_END)
    if begin < 0 or end < 0 or end < begin:
        out.report(str(design), "counter-registry markers missing or inverted")
        return {}
    entries = {}
    for line in text[begin:end].splitlines():
        row = re.match(r"\|\s*`([^`]+)`\s*\|\s*(counter|gauge)\s*\|", line)
        if not row:
            continue
        name, kind = row.group(1), row.group(2)
        key = (kind, name)
        if key in entries:
            out.report(str(design), f"duplicate registry entry `{name}`")
        entries[key] = bool(PLACEHOLDER.search(name))
    if not entries:
        out.report(str(design), "counter registry is empty")
    return entries


def extract_call_arg(text: str, start: int) -> str:
    """Return the balanced-paren argument text beginning at ``start``."""
    depth, i = 1, start
    while depth and i < len(text):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
        i += 1
    return text[start : i - 1]


def scan_metric_calls(src: pathlib.Path):
    """Yield (kind, file, line, literal_name | None, skeleton_regex | None).

    A single string-literal argument yields its exact name.  Anything else
    (concatenation with a runtime value) yields a skeleton regex built from
    the literal fragments, anchored wherever the argument starts or ends
    with a literal.
    """
    for path in source_files(src):
        text = strip_comments(path.read_text(encoding="utf-8"))
        for match in CALL.finditer(text):
            kind = match.group(1)
            line = text.count("\n", 0, match.start()) + 1
            arg = extract_call_arg(text, match.end()).strip()
            exact = re.fullmatch(r'"((?:[^"\\]|\\.)*)"', arg)
            if exact:
                yield kind, path, line, exact.group(1), None
                continue
            fragments = re.findall(r'"((?:[^"\\]|\\.)*)"', arg)
            if not fragments:
                # Name is fully runtime-computed; nothing to check
                # structurally, but it still must be a documented pattern —
                # flag it so the author adds a literal fragment.
                yield kind, path, line, None, None
                continue
            body = ".*".join(re.escape(f) for f in fragments)
            prefix = "" if arg.startswith('"') else ".*"
            suffix = "" if arg.endswith('"') else ".*"
            yield kind, path, line, None, prefix + body + suffix


def pattern_sample(name: str) -> str:
    """Instantiate registry placeholders with a concrete stand-in."""
    return PLACEHOLDER.sub("x0", name)


def check_counter_registry(repo: pathlib.Path, out: Violations) -> None:
    design = repo / "DESIGN.md"
    entries = parse_registry(design, out)
    if not entries:
        return
    exact_entries = {k for k, is_pat in entries.items() if not is_pat}
    pattern_entries = {k for k, is_pat in entries.items() if is_pat}

    seen_exact = set()
    matched_patterns = set()
    for kind, path, line, literal, skeleton in scan_metric_calls(repo / "src"):
        where = f"{path.relative_to(repo)}:{line}"
        if literal is not None:
            if (kind, literal) in exact_entries:
                seen_exact.add((kind, literal))
            else:
                other = "gauge" if kind == "counter" else "counter"
                if (other, literal) in entries:
                    out.report(
                        where,
                        f"`{literal}` is emitted as a {kind} but registered "
                        f"as a {other} in DESIGN.md",
                    )
                else:
                    out.report(
                        where,
                        f"{kind} `{literal}` is not in the DESIGN.md counter "
                        "registry — document it (or fix the name)",
                    )
        elif skeleton is not None:
            regex = re.compile(skeleton)
            hits = {
                (k, n)
                for (k, n) in pattern_entries
                if k == kind and regex.fullmatch(pattern_sample(n))
            }
            if hits:
                matched_patterns |= hits
            else:
                out.report(
                    where,
                    f"dynamically built {kind} name (fragments match "
                    f"/{skeleton}/) has no `<placeholder>` pattern in the "
                    "DESIGN.md counter registry",
                )
        else:
            out.report(
                where,
                f"{kind} name is fully runtime-computed; include at least "
                "one string-literal fragment so the registry linter can "
                "match it against a documented pattern",
            )

    for kind, name in sorted(exact_entries - seen_exact):
        out.report(
            "DESIGN.md",
            f"registry documents {kind} `{name}` but no code in src/ emits "
            "it — delete the entry or restore the metric",
        )
    for kind, name in sorted(pattern_entries - matched_patterns):
        out.report(
            "DESIGN.md",
            f"registry pattern {kind} `{name}` matches no dynamic call site "
            "in src/",
        )


# --------------------------------------------------------------------------
# Check 2: raw std::mutex family banned outside the annotated wrapper

RAW_MUTEX = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable|condition_variable_any)\b"
    r"|#\s*include\s*<(?:mutex|condition_variable|shared_mutex)>"
)


def check_raw_mutex(repo: pathlib.Path, out: Violations) -> None:
    wrapper = repo / "src" / "util" / "mutex.hpp"
    scanned = list(source_files(repo / "src"))
    scanned += list(source_files(repo / "bench"))
    tvviz_cli = repo / "tools" / "tvviz.cpp"
    if tvviz_cli.is_file():
        scanned.append(tvviz_cli)
    for path in scanned:
        if path == wrapper:
            continue
        text = strip_comments(path.read_text(encoding="utf-8"))
        for lineno, line in enumerate(text.splitlines(), 1):
            match = RAW_MUTEX.search(line)
            if match:
                out.report(
                    f"{path.relative_to(repo)}:{lineno}",
                    f"raw `{match.group(0).strip()}` — use util::Mutex / "
                    "util::LockGuard / util::CondVar from util/mutex.hpp so "
                    "the thread-safety analysis sees the lock (DESIGN.md "
                    "§13)",
                )


# --------------------------------------------------------------------------
# Check 3: wall-clock reads banned in the deterministic fault subsystem

WALL_CLOCK = re.compile(
    r"\bstd::chrono::(system_clock|high_resolution_clock)\b"
    r"|\b(?:gettimeofday|clock_gettime|localtime|gmtime|mktime)\s*\("
    r"|\bstd::time\s*\(|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"
    r"|\bWallTimer\b"
)


def check_fault_wall_clock(repo: pathlib.Path, out: Violations) -> None:
    fault_dir = repo / "src" / "fault"
    for path in source_files(fault_dir):
        text = strip_comments(path.read_text(encoding="utf-8"))
        for lineno, line in enumerate(text.splitlines(), 1):
            match = WALL_CLOCK.search(line)
            if match:
                out.report(
                    f"{path.relative_to(repo)}:{lineno}",
                    f"wall-clock read `{match.group(0).strip()}` in the "
                    "deterministic fault subsystem — decisions must depend "
                    "only on the seed and observed traffic (steady_clock "
                    "deadlines and sleep_for are fine)",
                )


# --------------------------------------------------------------------------
# Check 4: FNV-1a constants banned outside the canonical hash header

FNV_CONSTANT = re.compile(
    r"0x0*cbf29ce484222325\b|0x0*100000001b3\b", re.IGNORECASE
)


def check_fnv_constants(repo: pathlib.Path, out: Violations) -> None:
    canonical = repo / "src" / "util" / "hash.hpp"
    for path in source_files(repo / "src"):
        if path == canonical:
            continue
        text = strip_comments(path.read_text(encoding="utf-8"))
        for lineno, line in enumerate(text.splitlines(), 1):
            match = FNV_CONSTANT.search(line)
            if match:
                out.report(
                    f"{path.relative_to(repo)}:{lineno}",
                    f"raw FNV constant `{match.group(0)}` — hash through "
                    "util::fnv1a (util/hash.hpp) so ContentIds and replay "
                    "streams stay identical across every build",
                )


# --------------------------------------------------------------------------
# Check 5: CPU intrinsics banned outside the dispatch header

SIMD_INTRINSIC = re.compile(
    r"#\s*include\s*<(?:immintrin|x86intrin|x86gprintrin|emmintrin|xmmintrin|"
    r"pmmintrin|tmmintrin|smmintrin|nmmintrin|wmmintrin|ammintrin|"
    r"arm_neon|arm_sve)\.h>"
    r"|\b_mm\d*_[a-z0-9_]+\s*\("  # _mm_add_ps(, _mm256_loadu_si256(, ...
    r"|\b__m(?:64|128|256|512)[a-z]*\b"  # __m128, __m256i, __m512d, ...
    r"|\b(?:u?int|float|poly)(?:8|16|32|64)x\d+(?:x\d+)?_t\b"  # NEON vectors
)


def check_simd_intrinsics(repo: pathlib.Path, out: Violations) -> None:
    dispatch = repo / "src" / "util" / "simd.hpp"
    for path in source_files(repo / "src"):
        if path == dispatch:
            continue
        text = strip_comments(path.read_text(encoding="utf-8"))
        for lineno, line in enumerate(text.splitlines(), 1):
            match = SIMD_INTRINSIC.search(line)
            if match:
                out.report(
                    f"{path.relative_to(repo)}:{lineno}",
                    f"CPU intrinsic `{match.group(0).strip()}` outside "
                    "util/simd.hpp — call the dispatched wrapper instead so "
                    "the scalar tier stays selectable and bit-identical "
                    "(DESIGN.md §16)",
                )


# --------------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repo",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
        help="repository root (default: parent of tools/)",
    )
    args = parser.parse_args()
    repo = args.repo.resolve()
    if not (repo / "src").is_dir():
        print(f"lint_invariants: {repo} has no src/ directory", file=sys.stderr)
        return 2

    out = Violations()
    before = out.count
    classes_failed = 0
    for check in (check_counter_registry, check_raw_mutex,
                  check_fault_wall_clock, check_fnv_constants,
                  check_simd_intrinsics):
        check(repo, out)
        if out.count > before:
            classes_failed += 1
        before = out.count

    if out.count:
        print(
            f"lint_invariants: {out.count} violation(s) in "
            f"{classes_failed} check(s)",
            file=sys.stderr,
        )
        return 1
    print("lint_invariants: counter registry, mutex wrappers, fault "
          "determinism, hash canonicalization, and SIMD intrinsic "
          "containment all clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
