// tvviz-analyzer — project-specific AST checks (DESIGN.md §18).
//
// clang libTooling tool enforcing the hand-maintained contracts the regex
// linter (tools/lint_invariants.py) and clang-tidy cannot express:
//
//   zero-copy-escape      A raw pointer / iterator / span obtained from a
//                         util::SharedBytes must not be stored beyond the
//                         owning handle's reach: flagged when a
//                         .data()/.begin()/.end()/.span() result is written
//                         into a member of a class that keeps no SharedBytes
//                         handle, or init-captured by a lambda that does not
//                         also capture the handle by value.
//
//   loop-blocking-call    Callbacks registered on net::EventLoop
//                         (add/post/post_after) and jobs pushed onto a
//                         net::BlockingQueue run on the loop thread or a
//                         worker; they must never block: raw ::send/::recv
//                         (no deadline), CondVar::wait (no deadline) and
//                         BlockingQueue::pop are flagged. Deadline-carrying
//                         variants (wait_until, try_pop, TcpConnection's
//                         io-timeout I/O) are the sanctioned forms.
//
//   loop-this-capture     A *persistent* EventLoop::add registration that
//                         captures `this` without a std::weak_ptr captured
//                         alongside outlives no-one: the established idiom
//                         is `[this, ws = std::weak_ptr<T>(x)] { if (auto s
//                         = ws.lock()) ... }` (hub/tcp_hub.cpp). One-shot
//                         post/post_after closures are exempt.
//
//   wire-switch-default   Every `switch` over net::MsgType either handles
//                         all enumerators or carries a default that
//                         throws/logs/counts — a silent `default: break;`
//                         hides the day protocol v5 adds a message type.
//
//   hello-trailing-bytes  Hello-parsing code (HelloInfo::deserialize,
//                         parse_hello) reads trailing capability bytes only
//                         through net::read_trailing_capability(); direct
//                         remaining()/u8() probing forks the negotiation
//                         logic version by version.
//
//   loop-exception-escape A lambda registered on the loop or worker queue
//                         must not let exceptions escape (std::terminate on
//                         the loop thread): `throw` and calls to the
//                         throwing wire APIs (send_message, recv_message,
//                         parse_*, deserialize_*) are flagged unless inside
//                         a try block within the lambda. The catch-and-evict
//                         pattern (DESIGN.md §14) is the sanctioned form.
//
// False positives are suppressed with a comment on the flagged line or the
// line above:   // tvviz-analyzer: allow(<check-id>): <justification>
//
// Driven like clang-tidy: `tvviz-analyzer -p <build> file.cpp` against
// compile_commands.json (tools/run_static_analysis.sh adds a content-hash
// verdict cache), or `tvviz-analyzer fixture.cpp -- -std=c++20 -I src` for
// the fixture corpus (tools/check_analyzer_fixtures.py).
//
// Exit status: 0 clean, 1 findings, 2 the TU itself failed to parse.

#include <set>
#include <string>
#include <vector>

#include "clang/AST/ASTContext.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/ParentMapContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/CommandLine.h"
#include "llvm/Support/raw_ostream.h"

namespace {

using namespace clang;             // NOLINT
using namespace clang::ast_matchers;  // NOLINT

// --------------------------------------------------------------- reporting --

class Reporter {
 public:
  /// True when `text` carries an allow-marker for `id`.
  static bool lineAllows(const std::string& text, const std::string& id) {
    const std::string needle = "tvviz-analyzer: allow(" + id + ")";
    return text.find(needle) != std::string::npos;
  }

  /// A marker suppresses a finding on its own line, or anywhere in the
  /// contiguous block of //-comment lines directly above it (multi-line
  /// justifications are the common case).
  bool suppressed(const SourceManager& sm, SourceLocation loc,
                  const std::string& id) const {
    const FileID fid = sm.getFileID(loc);
    const unsigned line = sm.getExpansionLineNumber(loc);
    bool invalid = false;
    const llvm::StringRef buffer = sm.getBufferData(fid, &invalid);
    if (invalid || line == 0) return false;
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start <= buffer.size() && lines.size() < line) {
      std::size_t end = buffer.find('\n', start);
      if (end == llvm::StringRef::npos) end = buffer.size();
      lines.push_back(buffer.substr(start, end - start).str());
      start = end + 1;
    }
    if (lines.size() < line) return false;
    if (lineAllows(lines[line - 1], id)) return true;
    for (unsigned i = line - 1; i-- > 0;) {
      const std::string& text = lines[i];
      const std::size_t first = text.find_first_not_of(" \t");
      if (first == std::string::npos || text.compare(first, 2, "//") != 0)
        break;
      if (lineAllows(text, id)) return true;
    }
    return false;
  }

  void report(const SourceManager& sm, SourceLocation raw_loc,
              const std::string& id, const std::string& message) {
    const SourceLocation loc = sm.getExpansionLoc(raw_loc);
    if (loc.isInvalid() || sm.isInSystemHeader(loc)) return;
    if (suppressed(sm, loc, id)) return;
    const std::string file = sm.getFilename(loc).str();
    const unsigned line = sm.getExpansionLineNumber(loc);
    const unsigned col = sm.getExpansionColumnNumber(loc);
    // One report per (file, line, check): the same header finding would
    // otherwise repeat for every TU that includes it, and template
    // instantiations would repeat their pattern's findings.
    const std::string key = file + ":" + std::to_string(line) + ":" + id;
    if (!seen_.insert(key).second) return;
    llvm::errs() << file << ":" << line << ":" << col << ": error: [" << id
                 << "] " << message << "\n";
    ++violations_;
  }

  unsigned violations() const { return violations_; }

 private:
  std::set<std::string> seen_;
  unsigned violations_ = 0;
};

/// True when any field of `record` keeps a SharedBytes handle (directly or
/// inside a container/optional — a type-name test is deliberate: holding
/// the handle in ANY form keeps the bytes alive).
bool recordKeepsHandle(const RecordDecl* record) {
  for (const FieldDecl* field : record->fields()) {
    if (field->getType().getAsString().find("SharedBytes") !=
        std::string::npos)
      return true;
  }
  return false;
}

bool typeNameContains(QualType type, const char* fragment) {
  return type.getAsString().find(fragment) != std::string::npos;
}

/// True when a CXXTryStmt encloses `node` without an intervening lambda
/// boundary. A try block *outside* the lambda does not protect it (the
/// exception unwinds through operator() into the loop dispatch), and a
/// nested lambda's invocation site is unknown — conservatively unprotected.
bool protectedByTryWithin(ASTContext& ctx, const Stmt& node) {
  DynTypedNode current = DynTypedNode::create(node);
  while (true) {
    const auto parents = ctx.getParents(current);
    if (parents.empty()) return false;
    current = parents[0];
    if (current.get<CXXTryStmt>() != nullptr) return true;
    if (current.get<LambdaExpr>() != nullptr) return false;
  }
}

// ---------------------------------------------------- check: zero-copy -----

/// Member-store escapes: `field_ = handle.data()` and `Ctor() :
/// field_(handle.data())`. Allowed when the enclosing record also keeps a
/// SharedBytes member (the handle travels alongside the alias).
class ZeroCopyEscapeCheck : public MatchFinder::MatchCallback {
 public:
  explicit ZeroCopyEscapeCheck(Reporter& reporter) : reporter_(reporter) {}

  void run(const MatchFinder::MatchResult& result) override {
    const auto* field = result.Nodes.getNodeAs<FieldDecl>("field");
    const auto* escape = result.Nodes.getNodeAs<CXXMemberCallExpr>("escape");
    if (field == nullptr || escape == nullptr) return;
    const RecordDecl* record = field->getParent();
    if (record == nullptr || recordKeepsHandle(record)) return;
    std::string method = "data";
    if (const auto* decl = escape->getMethodDecl())
      method = decl->getNameAsString();
    reporter_.report(
        *result.SourceManager, escape->getExprLoc(), "zero-copy-escape",
        "SharedBytes::" + method + "() result stored into field '" +
            field->getNameAsString() + "' of '" +
            record->getNameAsString() +
            "', which keeps no SharedBytes handle — the alias can outlive "
            "the owning buffer; store the handle alongside (DESIGN.md §18)");
  }

 private:
  Reporter& reporter_;
};

/// Lambda-capture escapes: `[p = handle.data()] { ... }` without the handle
/// captured by value alongside.
class LambdaEscapeCheck : public MatchFinder::MatchCallback {
 public:
  explicit LambdaEscapeCheck(Reporter& reporter) : reporter_(reporter) {}

  void run(const MatchFinder::MatchResult& result) override {
    const auto* lambda = result.Nodes.getNodeAs<LambdaExpr>("lambda");
    if (lambda == nullptr) return;
    ASTContext& ctx = *result.Context;
    const auto escape_call = cxxMemberCallExpr(
        callee(cxxMethodDecl(hasAnyName("data", "begin", "end", "span"),
                             ofClass(hasName("::tvviz::util::SharedBytes")))));

    bool captures_handle_by_value = false;
    std::vector<const VarDecl*> escapes;
    for (const LambdaCapture& cap : lambda->captures()) {
      if (!cap.capturesVariable()) continue;
      const auto* var = llvm::dyn_cast_or_null<VarDecl>(cap.getCapturedVar());
      if (var == nullptr) continue;
      if (typeNameContains(var->getType(), "SharedBytes")) {
        if (cap.getCaptureKind() == LCK_ByCopy)
          captures_handle_by_value = true;
        continue;
      }
      if (var->isInitCapture() && var->getInit() != nullptr &&
          !match(expr(anyOf(escape_call, hasDescendant(escape_call))),
                 *var->getInit(), ctx)
               .empty())
        escapes.push_back(var);
    }
    if (captures_handle_by_value) return;
    for (const VarDecl* var : escapes)
      reporter_.report(
          *result.SourceManager, lambda->getBeginLoc(), "zero-copy-escape",
          "lambda init-capture '" + var->getNameAsString() +
              "' aliases a SharedBytes buffer without capturing the owning "
              "handle by value — capture the SharedBytes alongside so the "
              "bytes outlive the callback (DESIGN.md §18)");
  }

 private:
  Reporter& reporter_;
};

// ------------------------------------- check: event-loop / worker lambdas --

/// Everything registered on the loop (EventLoop::add/post/post_after) or
/// pushed onto a worker queue (BlockingQueue::push): blocking calls,
/// this-captures without the weak_ptr idiom, and escaping exceptions.
class LoopCallbackCheck : public MatchFinder::MatchCallback {
 public:
  explicit LoopCallbackCheck(Reporter& reporter) : reporter_(reporter) {}

  void run(const MatchFinder::MatchResult& result) override {
    const auto* reg = result.Nodes.getNodeAs<CXXMemberCallExpr>("reg");
    if (reg == nullptr) return;
    const auto* method = reg->getMethodDecl();
    if (method == nullptr) return;
    const std::string method_name = method->getNameAsString();
    const bool persistent = method_name == "add";

    ASTContext& ctx = *result.Context;
    std::vector<const LambdaExpr*> lambdas;
    for (const Expr* arg : reg->arguments()) collectLambdas(arg, ctx, lambdas);
    for (const LambdaExpr* lambda : lambdas) {
      checkBlockingCalls(lambda, result);
      if (persistent) checkThisCapture(lambda, result);
      checkExceptionEscape(lambda, result);
    }
  }

 private:
  static void collectLambdas(const Expr* arg, ASTContext& ctx,
                             std::vector<const LambdaExpr*>& out) {
    if (const auto* direct =
            llvm::dyn_cast<LambdaExpr>(arg->IgnoreImplicit()))
      out.push_back(direct);
    for (const auto& bound :
         match(expr(forEachDescendant(lambdaExpr().bind("l"))), *arg, ctx)) {
      const auto* lambda = bound.getNodeAs<LambdaExpr>("l");
      if (lambda != nullptr) out.push_back(lambda);
    }
  }

  void checkBlockingCalls(const LambdaExpr* lambda,
                          const MatchFinder::MatchResult& result) {
    const Stmt* body = lambda->getBody();
    if (body == nullptr) return;
    const auto blocking = callExpr(
        anyOf(callee(functionDecl(hasAnyName("::send", "::recv", "::sendmsg",
                                             "::recvmsg", "::poll",
                                             "::select"))),
              callee(cxxMethodDecl(
                  hasName("wait"),
                  ofClass(hasName("::tvviz::util::CondVar")))),
              callee(cxxMethodDecl(
                  hasName("pop"),
                  ofClass(hasName("::tvviz::net::BlockingQueue"))))));
    for (const auto& bound :
         match(stmt(forEachDescendant(blocking.bind("call"))), *body,
               *result.Context)) {
      const auto* call = bound.getNodeAs<CallExpr>("call");
      if (call == nullptr) continue;
      std::string callee_name = "<call>";
      if (const auto* decl = call->getDirectCallee())
        callee_name = decl->getQualifiedNameAsString();
      reporter_.report(
          *result.SourceManager, call->getExprLoc(), "loop-blocking-call",
          "blocking call '" + callee_name +
              "' inside a callback registered on the event loop / worker "
              "queue — loop callbacks must never block; use the "
              "deadline-carrying form (wait_until, try_pop, io-timeout "
              "send/recv) or move the work off the callback (DESIGN.md §18)");
    }
  }

  void checkThisCapture(const LambdaExpr* lambda,
                        const MatchFinder::MatchResult& result) {
    bool captures_this = false;
    bool captures_weak = false;
    for (const LambdaCapture& cap : lambda->captures()) {
      if (cap.capturesThis()) {
        captures_this = true;
      } else if (cap.capturesVariable()) {
        const auto* var = cap.getCapturedVar();
        if (var != nullptr && typeNameContains(var->getType(), "weak_ptr"))
          captures_weak = true;
      }
    }
    if (captures_this && !captures_weak)
      reporter_.report(
          *result.SourceManager, lambda->getBeginLoc(), "loop-this-capture",
          "persistent EventLoop::add registration captures 'this' without a "
          "std::weak_ptr captured alongside — the callback can fire after "
          "the object dies; use the `[this, ws = std::weak_ptr<T>(x)]` "
          "idiom (hub/tcp_hub.cpp) or suppress with a lifetime "
          "justification (DESIGN.md §18)");
  }

  void checkExceptionEscape(const LambdaExpr* lambda,
                            const MatchFinder::MatchResult& result) {
    const Stmt* body = lambda->getBody();
    if (body == nullptr) return;
    ASTContext& ctx = *result.Context;
    const auto thrower = stmt(anyOf(
        cxxThrowExpr(),
        callExpr(callee(functionDecl(hasAnyName(
            "send_message", "recv_message", "parse_hello", "parse_frame_ref",
            "parse_frame_fetch", "deserialize_message", "deserialize_frame",
            "strip_depth", "split_depth_frame"))))));
    for (const auto& bound :
         match(stmt(forEachDescendant(thrower.bind("t"))), *body, ctx)) {
      const auto* node = bound.getNodeAs<Stmt>("t");
      if (node == nullptr || protectedByTryWithin(ctx, *node)) continue;
      std::string what = "throw";
      if (const auto* call = llvm::dyn_cast<CallExpr>(node)) {
        if (const auto* decl = call->getDirectCallee())
          what = decl->getQualifiedNameAsString();
      }
      reporter_.report(
          *result.SourceManager, node->getBeginLoc(), "loop-exception-escape",
          "'" + what +
              "' can throw out of a loop/worker callback — an escaped "
              "exception terminates the process on the loop thread; wrap in "
              "try/catch and evict the connection instead (DESIGN.md §18)");
    }
  }

  Reporter& reporter_;
};

// ---------------------------------------------- check: wire exhaustiveness --

class WireSwitchCheck : public MatchFinder::MatchCallback {
 public:
  explicit WireSwitchCheck(Reporter& reporter) : reporter_(reporter) {}

  void run(const MatchFinder::MatchResult& result) override {
    const auto* sw = result.Nodes.getNodeAs<SwitchStmt>("switch");
    if (sw == nullptr || sw->getCond() == nullptr) return;
    ASTContext& ctx = *result.Context;
    const QualType cond_type = sw->getCond()->IgnoreImpCasts()->getType();
    const auto* enum_type = cond_type->getAs<EnumType>();
    if (enum_type == nullptr) return;
    const EnumDecl* enum_decl = enum_type->getDecl();
    if (enum_decl->getQualifiedNameAsString() != "tvviz::net::MsgType")
      return;

    std::set<long long> covered;
    const DefaultStmt* default_stmt = nullptr;
    for (const SwitchCase* sc = sw->getSwitchCaseList(); sc != nullptr;
         sc = sc->getNextSwitchCase()) {
      if (const auto* def = llvm::dyn_cast<DefaultStmt>(sc)) {
        default_stmt = def;
        continue;
      }
      const auto* cs = llvm::cast<CaseStmt>(sc);
      if (const Expr* lhs = cs->getLHS())
        covered.insert(lhs->EvaluateKnownConstInt(ctx).getExtValue());
    }

    if (default_stmt == nullptr) {
      std::string missing;
      for (const EnumConstantDecl* enumerator : enum_decl->enumerators()) {
        if (covered.count(enumerator->getInitVal().getExtValue()) != 0)
          continue;
        if (!missing.empty()) missing += ", ";
        missing += enumerator->getNameAsString();
      }
      if (!missing.empty())
        reporter_.report(
            *result.SourceManager, sw->getSwitchLoc(), "wire-switch-default",
            "switch over net::MsgType does not handle " + missing +
                " and has no default — add the cases, or a default that "
                "throws/logs/counts so a future protocol version cannot "
                "fall through silently (DESIGN.md §18)");
      return;
    }

    // A default exists: it must DO something observable (throw, log, count,
    // evict — any call). `default: break;` / `default: return;` is the
    // silent fallthrough that swallows protocol-v5 messages.
    const Stmt* sub = default_stmt->getSubStmt();
    const bool silent =
        sub == nullptr ||
        match(stmt(anyOf(callExpr(), cxxThrowExpr(),
                         hasDescendant(stmt(anyOf(callExpr(),
                                                  cxxThrowExpr()))))),
              *sub, ctx)
            .empty();
    if (silent)
      reporter_.report(
          *result.SourceManager, default_stmt->getDefaultLoc(),
          "wire-switch-default",
          "silent default in a switch over net::MsgType — when protocol v5 "
          "adds a message this drops it without a trace; throw, log or "
          "count the unexpected type (DESIGN.md §18)");
  }

 private:
  Reporter& reporter_;
};

class HelloTrailingCheck : public MatchFinder::MatchCallback {
 public:
  explicit HelloTrailingCheck(Reporter& reporter) : reporter_(reporter) {}

  void run(const MatchFinder::MatchResult& result) override {
    const auto* call = result.Nodes.getNodeAs<CXXMemberCallExpr>("call");
    const auto* fn = result.Nodes.getNodeAs<FunctionDecl>("fn");
    if (call == nullptr || fn == nullptr) return;
    const std::string name = fn->getQualifiedNameAsString();
    const bool hello_parser =
        name.find("HelloInfo::deserialize") != std::string::npos ||
        name.find("parse_hello") != std::string::npos;
    if (!hello_parser) return;
    reporter_.report(
        *result.SourceManager, call->getExprLoc(), "hello-trailing-bytes",
        "hello-parsing code probes the reader directly ('" + name +
            "' calls ByteReader::remaining()) — read trailing capability "
            "bytes through net::read_trailing_capability() so every "
            "capability negotiates identically (DESIGN.md §18)");
  }

 private:
  Reporter& reporter_;
};

}  // namespace

// -------------------------------------------------------------------- main --

static llvm::cl::OptionCategory kToolCategory("tvviz-analyzer options");
static llvm::cl::extrahelp kCommonHelp(
    clang::tooling::CommonOptionsParser::HelpMessage);

int main(int argc, const char** argv) {
  auto options = clang::tooling::CommonOptionsParser::create(
      argc, argv, kToolCategory);
  if (!options) {
    llvm::errs() << llvm::toString(options.takeError()) << "\n";
    return 2;
  }
  clang::tooling::ClangTool tool(options->getCompilations(),
                                 options->getSourcePathList());

  Reporter reporter;
  ZeroCopyEscapeCheck zero_copy(reporter);
  LambdaEscapeCheck lambda_escape(reporter);
  LoopCallbackCheck loop_callback(reporter);
  WireSwitchCheck wire_switch(reporter);
  HelloTrailingCheck hello_trailing(reporter);

  MatchFinder finder;
  const auto shared_bytes_escape = cxxMemberCallExpr(
      callee(cxxMethodDecl(hasAnyName("data", "begin", "end", "span"),
                           ofClass(hasName("::tvviz::util::SharedBytes")))));
  const auto escape_expr =
      expr(anyOf(shared_bytes_escape.bind("escape"),
                 hasDescendant(shared_bytes_escape.bind("escape"))));
  finder.addMatcher(
      binaryOperator(isAssignmentOperator(),
                     hasLHS(memberExpr(member(fieldDecl().bind("field")))),
                     hasRHS(escape_expr)),
      &zero_copy);
  finder.addMatcher(
      cxxConstructorDecl(forEachConstructorInitializer(
          cxxCtorInitializer(isMemberInitializer(),
                             forField(fieldDecl().bind("field")),
                             withInitializer(escape_expr)))),
      &zero_copy);
  finder.addMatcher(lambdaExpr().bind("lambda"), &lambda_escape);

  finder.addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(
              hasAnyName("add", "post", "post_after"),
              ofClass(hasName("::tvviz::net::EventLoop")))))
          .bind("reg"),
      &loop_callback);
  finder.addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(
              hasName("push"),
              ofClass(hasName("::tvviz::net::BlockingQueue")))))
          .bind("reg"),
      &loop_callback);

  finder.addMatcher(switchStmt().bind("switch"), &wire_switch);

  finder.addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(hasName("remaining"),
                               ofClass(hasName("::tvviz::util::ByteReader")))),
          hasAncestor(functionDecl().bind("fn")))
          .bind("call"),
      &hello_trailing);

  const int status =
      tool.run(clang::tooling::newFrontendActionFactory(&finder).get());
  if (reporter.violations() != 0) {
    llvm::errs() << "tvviz-analyzer: " << reporter.violations()
                 << " finding(s)\n";
    return 1;
  }
  if (status != 0) return 2;
  llvm::outs() << "tvviz-analyzer: clean\n";
  return 0;
}
