#!/usr/bin/env python3
"""Drive tvviz-analyzer over the fixture corpus (tests/static/analyzer/).

Each fixture declares its expectation in markers:

    // expect-reject: <check-id>   one per expected finding of that id
    // expect-clean                the analyzer must report nothing

A rejected fixture must produce *exactly* the marked finding ids (as a
multiset) and exit 1; a clean fixture must exit 0. Unexpected ids fail the
run, so the corpus guards against false positives as much as misses.

Without a built analyzer (no libclang dev installed) the script prints
"SKIPPED: ..." and exits 0; the analyzer_fixtures ctest carries
SKIP_REGULAR_EXPRESSION "^SKIPPED:" so the skip is recorded, never a
silent pass — the same contract as the clang-tidy gate.
"""

from __future__ import annotations

import argparse
import collections
import glob
import os
import re
import shutil
import subprocess
import sys

CHECK_IDS = (
    "zero-copy-escape",
    "loop-blocking-call",
    "loop-this-capture",
    "wire-switch-default",
    "hello-trailing-bytes",
    "loop-exception-escape",
)
FINDING_RE = re.compile(r"\[(" + "|".join(CHECK_IDS) + r")\]")
REJECT_RE = re.compile(r"//\s*expect-reject:\s*([a-z-]+)")
CLEAN_RE = re.compile(r"//\s*expect-clean")


def resource_dir() -> str | None:
    """Builtin-header dir for the libTooling binary (it does not live in an
    LLVM prefix, so it cannot find <stddef.h> & co. on its own)."""
    clang = shutil.which("clang")
    if clang:
        probe = subprocess.run([clang, "-print-resource-dir"],
                               capture_output=True, text=True, check=False)
        if probe.returncode == 0 and probe.stdout.strip():
            return probe.stdout.strip()
    candidates = sorted(glob.glob("/usr/lib/llvm-*/lib/clang/*"))
    return candidates[-1] if candidates else None


def expectations(path: str) -> tuple[collections.Counter, bool]:
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    rejects = collections.Counter(REJECT_RE.findall(text))
    clean = CLEAN_RE.search(text) is not None
    return rejects, clean


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", required=True, help="repository root")
    parser.add_argument("--analyzer", default="",
                        help="path to the tvviz-analyzer binary")
    args = parser.parse_args()

    if not args.analyzer or not os.access(args.analyzer, os.X_OK):
        print("SKIPPED: tvviz-analyzer not built (clang dev libraries "
              "unavailable); fixture corpus not exercised")
        return 0

    fixture_dir = os.path.join(args.repo, "tests", "static", "analyzer")
    fixtures = sorted(glob.glob(os.path.join(fixture_dir, "*.cpp")))
    if not fixtures:
        print(f"error: no fixtures under {fixture_dir}", file=sys.stderr)
        return 1

    compile_args = ["--", "-std=c++20", "-I", os.path.join(args.repo, "src")]
    res_dir = resource_dir()
    if res_dir:
        compile_args.append(f"-resource-dir={res_dir}")

    failures = 0
    for fixture in fixtures:
        name = os.path.basename(fixture)
        expected, clean = expectations(fixture)
        if not expected and not clean:
            print(f"FAIL {name}: no expect-reject/expect-clean marker")
            failures += 1
            continue
        if expected and clean:
            print(f"FAIL {name}: both expect-reject and expect-clean")
            failures += 1
            continue

        run = subprocess.run([args.analyzer, fixture] + compile_args,
                             capture_output=True, text=True, check=False)
        got = collections.Counter(FINDING_RE.findall(run.stderr))

        if run.returncode == 2:
            print(f"FAIL {name}: fixture did not parse\n{run.stderr}")
            failures += 1
            continue
        if clean:
            if run.returncode == 0 and not got:
                print(f"ok   {name}: clean as expected")
            else:
                print(f"FAIL {name}: expected clean, got {dict(got)} "
                      f"(exit {run.returncode})\n{run.stderr}")
                failures += 1
            continue
        if run.returncode == 1 and got == expected:
            print(f"ok   {name}: rejected with {dict(expected)}")
        else:
            print(f"FAIL {name}: expected findings {dict(expected)}, got "
                  f"{dict(got)} (exit {run.returncode})\n{run.stderr}")
            failures += 1

    total = len(fixtures)
    print(f"{total - failures}/{total} fixtures behaved as expected")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
