file(REMOVE_RECURSE
  "CMakeFiles/distributed_viewer.dir/distributed_viewer.cpp.o"
  "CMakeFiles/distributed_viewer.dir/distributed_viewer.cpp.o.d"
  "distributed_viewer"
  "distributed_viewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_viewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
