# Empty dependencies file for distributed_viewer.
# This may be replaced when dependencies are built.
