# Empty dependencies file for partition_sweep.
# This may be replaced when dependencies are built.
