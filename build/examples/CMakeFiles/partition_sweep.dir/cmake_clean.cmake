file(REMOVE_RECURSE
  "CMakeFiles/partition_sweep.dir/partition_sweep.cpp.o"
  "CMakeFiles/partition_sweep.dir/partition_sweep.cpp.o.d"
  "partition_sweep"
  "partition_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
