file(REMOVE_RECURSE
  "CMakeFiles/ibr_preview.dir/ibr_preview.cpp.o"
  "CMakeFiles/ibr_preview.dir/ibr_preview.cpp.o.d"
  "ibr_preview"
  "ibr_preview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibr_preview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
