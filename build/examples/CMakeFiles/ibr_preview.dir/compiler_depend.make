# Empty compiler generated dependencies file for ibr_preview.
# This may be replaced when dependencies are built.
