file(REMOVE_RECURSE
  "CMakeFiles/coprocess_tracking.dir/coprocess_tracking.cpp.o"
  "CMakeFiles/coprocess_tracking.dir/coprocess_tracking.cpp.o.d"
  "coprocess_tracking"
  "coprocess_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coprocess_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
