# Empty compiler generated dependencies file for coprocess_tracking.
# This may be replaced when dependencies are built.
