# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/vmp_test[1]_include.cmake")
include("/root/repo/build/tests/sevt_test[1]_include.cmake")
include("/root/repo/build/tests/field_test[1]_include.cmake")
include("/root/repo/build/tests/render_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/compositing_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/obs_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/session_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/ibr_preview_test[1]_include.cmake")
include("/root/repo/build/tests/collective_test[1]_include.cmake")
include("/root/repo/build/tests/motion_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_property_test[1]_include.cmake")
include("/root/repo/build/tests/tracking_test[1]_include.cmake")
include("/root/repo/build/tests/stores_adaptive_test[1]_include.cmake")
include("/root/repo/build/tests/balance_tree_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
