# Empty compiler generated dependencies file for ibr_preview_test.
# This may be replaced when dependencies are built.
