file(REMOVE_RECURSE
  "CMakeFiles/ibr_preview_test.dir/ibr_preview_test.cpp.o"
  "CMakeFiles/ibr_preview_test.dir/ibr_preview_test.cpp.o.d"
  "ibr_preview_test"
  "ibr_preview_test.pdb"
  "ibr_preview_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibr_preview_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
