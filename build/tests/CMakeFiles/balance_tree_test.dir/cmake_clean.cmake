file(REMOVE_RECURSE
  "CMakeFiles/balance_tree_test.dir/balance_tree_test.cpp.o"
  "CMakeFiles/balance_tree_test.dir/balance_tree_test.cpp.o.d"
  "balance_tree_test"
  "balance_tree_test.pdb"
  "balance_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/balance_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
