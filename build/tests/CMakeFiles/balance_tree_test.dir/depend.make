# Empty dependencies file for balance_tree_test.
# This may be replaced when dependencies are built.
