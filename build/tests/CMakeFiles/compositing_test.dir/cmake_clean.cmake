file(REMOVE_RECURSE
  "CMakeFiles/compositing_test.dir/compositing_test.cpp.o"
  "CMakeFiles/compositing_test.dir/compositing_test.cpp.o.d"
  "compositing_test"
  "compositing_test.pdb"
  "compositing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compositing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
