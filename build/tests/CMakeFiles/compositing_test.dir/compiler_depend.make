# Empty compiler generated dependencies file for compositing_test.
# This may be replaced when dependencies are built.
