# Empty dependencies file for stores_adaptive_test.
# This may be replaced when dependencies are built.
