file(REMOVE_RECURSE
  "CMakeFiles/stores_adaptive_test.dir/stores_adaptive_test.cpp.o"
  "CMakeFiles/stores_adaptive_test.dir/stores_adaptive_test.cpp.o.d"
  "stores_adaptive_test"
  "stores_adaptive_test.pdb"
  "stores_adaptive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stores_adaptive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
