file(REMOVE_RECURSE
  "CMakeFiles/sevt_test.dir/sevt_test.cpp.o"
  "CMakeFiles/sevt_test.dir/sevt_test.cpp.o.d"
  "sevt_test"
  "sevt_test.pdb"
  "sevt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sevt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
