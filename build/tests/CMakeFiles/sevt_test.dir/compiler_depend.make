# Empty compiler generated dependencies file for sevt_test.
# This may be replaced when dependencies are built.
