# Empty compiler generated dependencies file for vmp_test.
# This may be replaced when dependencies are built.
