file(REMOVE_RECURSE
  "CMakeFiles/vmp_test.dir/vmp_test.cpp.o"
  "CMakeFiles/vmp_test.dir/vmp_test.cpp.o.d"
  "vmp_test"
  "vmp_test.pdb"
  "vmp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
