file(REMOVE_RECURSE
  "CMakeFiles/crossover_vortex.dir/crossover_vortex.cpp.o"
  "CMakeFiles/crossover_vortex.dir/crossover_vortex.cpp.o.d"
  "crossover_vortex"
  "crossover_vortex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossover_vortex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
