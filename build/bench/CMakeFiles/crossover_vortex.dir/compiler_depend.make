# Empty compiler generated dependencies file for crossover_vortex.
# This may be replaced when dependencies are built.
