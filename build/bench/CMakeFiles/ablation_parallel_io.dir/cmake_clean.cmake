file(REMOVE_RECURSE
  "CMakeFiles/ablation_parallel_io.dir/ablation_parallel_io.cpp.o"
  "CMakeFiles/ablation_parallel_io.dir/ablation_parallel_io.cpp.o.d"
  "ablation_parallel_io"
  "ablation_parallel_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_parallel_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
