# Empty compiler generated dependencies file for ablation_parallel_io.
# This may be replaced when dependencies are built.
