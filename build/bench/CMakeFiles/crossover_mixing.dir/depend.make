# Empty dependencies file for crossover_mixing.
# This may be replaced when dependencies are built.
