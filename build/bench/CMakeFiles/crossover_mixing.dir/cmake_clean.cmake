file(REMOVE_RECURSE
  "CMakeFiles/crossover_mixing.dir/crossover_mixing.cpp.o"
  "CMakeFiles/crossover_mixing.dir/crossover_mixing.cpp.o.d"
  "crossover_mixing"
  "crossover_mixing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossover_mixing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
