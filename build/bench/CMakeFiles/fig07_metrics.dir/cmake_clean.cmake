file(REMOVE_RECURSE
  "CMakeFiles/fig07_metrics.dir/fig07_metrics.cpp.o"
  "CMakeFiles/fig07_metrics.dir/fig07_metrics.cpp.o.d"
  "fig07_metrics"
  "fig07_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
