# Empty dependencies file for fig07_metrics.
# This may be replaced when dependencies are built.
