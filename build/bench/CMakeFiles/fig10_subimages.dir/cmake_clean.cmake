file(REMOVE_RECURSE
  "CMakeFiles/fig10_subimages.dir/fig10_subimages.cpp.o"
  "CMakeFiles/fig10_subimages.dir/fig10_subimages.cpp.o.d"
  "fig10_subimages"
  "fig10_subimages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_subimages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
