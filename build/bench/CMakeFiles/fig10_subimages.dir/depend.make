# Empty dependencies file for fig10_subimages.
# This may be replaced when dependencies are built.
