# Empty dependencies file for fig08_transfer.
# This may be replaced when dependencies are built.
