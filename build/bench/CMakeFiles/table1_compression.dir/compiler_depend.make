# Empty compiler generated dependencies file for table1_compression.
# This may be replaced when dependencies are built.
