file(REMOVE_RECURSE
  "CMakeFiles/table2_framerates.dir/table2_framerates.cpp.o"
  "CMakeFiles/table2_framerates.dir/table2_framerates.cpp.o.d"
  "table2_framerates"
  "table2_framerates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_framerates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
