# Empty compiler generated dependencies file for table2_framerates.
# This may be replaced when dependencies are built.
