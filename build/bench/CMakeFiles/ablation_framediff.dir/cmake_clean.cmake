file(REMOVE_RECURSE
  "CMakeFiles/ablation_framediff.dir/ablation_framediff.cpp.o"
  "CMakeFiles/ablation_framediff.dir/ablation_framediff.cpp.o.d"
  "ablation_framediff"
  "ablation_framediff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_framediff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
