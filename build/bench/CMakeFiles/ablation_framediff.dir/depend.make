# Empty dependencies file for ablation_framediff.
# This may be replaced when dependencies are built.
