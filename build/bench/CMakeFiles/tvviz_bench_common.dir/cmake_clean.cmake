file(REMOVE_RECURSE
  "../lib/libtvviz_bench_common.a"
  "../lib/libtvviz_bench_common.pdb"
  "CMakeFiles/tvviz_bench_common.dir/common.cpp.o"
  "CMakeFiles/tvviz_bench_common.dir/common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvviz_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
