file(REMOVE_RECURSE
  "../lib/libtvviz_bench_common.a"
)
