# Empty compiler generated dependencies file for tvviz_bench_common.
# This may be replaced when dependencies are built.
