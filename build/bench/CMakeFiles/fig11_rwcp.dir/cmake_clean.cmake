file(REMOVE_RECURSE
  "CMakeFiles/fig11_rwcp.dir/fig11_rwcp.cpp.o"
  "CMakeFiles/fig11_rwcp.dir/fig11_rwcp.cpp.o.d"
  "fig11_rwcp"
  "fig11_rwcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_rwcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
