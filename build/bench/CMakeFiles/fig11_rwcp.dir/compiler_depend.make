# Empty compiler generated dependencies file for fig11_rwcp.
# This may be replaced when dependencies are built.
