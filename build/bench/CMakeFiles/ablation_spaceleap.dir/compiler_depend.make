# Empty compiler generated dependencies file for ablation_spaceleap.
# This may be replaced when dependencies are built.
