file(REMOVE_RECURSE
  "CMakeFiles/ablation_spaceleap.dir/ablation_spaceleap.cpp.o"
  "CMakeFiles/ablation_spaceleap.dir/ablation_spaceleap.cpp.o.d"
  "ablation_spaceleap"
  "ablation_spaceleap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spaceleap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
