file(REMOVE_RECURSE
  "CMakeFiles/ablation_codecs.dir/ablation_codecs.cpp.o"
  "CMakeFiles/ablation_codecs.dir/ablation_codecs.cpp.o.d"
  "ablation_codecs"
  "ablation_codecs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_codecs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
