# Empty compiler generated dependencies file for ablation_codecs.
# This may be replaced when dependencies are built.
