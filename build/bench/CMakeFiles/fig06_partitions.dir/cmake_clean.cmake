file(REMOVE_RECURSE
  "CMakeFiles/fig06_partitions.dir/fig06_partitions.cpp.o"
  "CMakeFiles/fig06_partitions.dir/fig06_partitions.cpp.o.d"
  "fig06_partitions"
  "fig06_partitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
