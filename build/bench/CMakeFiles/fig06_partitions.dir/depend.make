# Empty dependencies file for fig06_partitions.
# This may be replaced when dependencies are built.
