# Empty compiler generated dependencies file for ablation_mpeg.
# This may be replaced when dependencies are built.
