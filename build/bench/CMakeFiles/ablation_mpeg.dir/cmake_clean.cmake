file(REMOVE_RECURSE
  "CMakeFiles/ablation_mpeg.dir/ablation_mpeg.cpp.o"
  "CMakeFiles/ablation_mpeg.dir/ablation_mpeg.cpp.o.d"
  "ablation_mpeg"
  "ablation_mpeg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mpeg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
