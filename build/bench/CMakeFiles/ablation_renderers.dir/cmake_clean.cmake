file(REMOVE_RECURSE
  "CMakeFiles/ablation_renderers.dir/ablation_renderers.cpp.o"
  "CMakeFiles/ablation_renderers.dir/ablation_renderers.cpp.o.d"
  "ablation_renderers"
  "ablation_renderers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_renderers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
