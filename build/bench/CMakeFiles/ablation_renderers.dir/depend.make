# Empty dependencies file for ablation_renderers.
# This may be replaced when dependencies are built.
