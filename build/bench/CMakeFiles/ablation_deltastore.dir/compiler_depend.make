# Empty compiler generated dependencies file for ablation_deltastore.
# This may be replaced when dependencies are built.
