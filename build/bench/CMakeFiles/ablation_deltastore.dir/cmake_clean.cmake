file(REMOVE_RECURSE
  "CMakeFiles/ablation_deltastore.dir/ablation_deltastore.cpp.o"
  "CMakeFiles/ablation_deltastore.dir/ablation_deltastore.cpp.o.d"
  "ablation_deltastore"
  "ablation_deltastore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_deltastore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
