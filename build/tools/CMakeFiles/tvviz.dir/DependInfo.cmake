
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/tvviz.cpp" "tools/CMakeFiles/tvviz.dir/tvviz.cpp.o" "gcc" "tools/CMakeFiles/tvviz.dir/tvviz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tvviz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/tvviz_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/compositing/CMakeFiles/tvviz_compositing.dir/DependInfo.cmake"
  "/root/repo/build/src/field/CMakeFiles/tvviz_field.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tvviz_net.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/tvviz_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/render/CMakeFiles/tvviz_render.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tvviz_util.dir/DependInfo.cmake"
  "/root/repo/build/src/vmp/CMakeFiles/tvviz_vmp.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/tvviz_codec_bytes.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
