# Empty dependencies file for tvviz.
# This may be replaced when dependencies are built.
