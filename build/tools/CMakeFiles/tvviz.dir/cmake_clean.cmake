file(REMOVE_RECURSE
  "CMakeFiles/tvviz.dir/tvviz.cpp.o"
  "CMakeFiles/tvviz.dir/tvviz.cpp.o.d"
  "tvviz"
  "tvviz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvviz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
