file(REMOVE_RECURSE
  "CMakeFiles/tvviz_core.dir/adaptive.cpp.o"
  "CMakeFiles/tvviz_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/tvviz_core.dir/costs.cpp.o"
  "CMakeFiles/tvviz_core.dir/costs.cpp.o.d"
  "CMakeFiles/tvviz_core.dir/partition.cpp.o"
  "CMakeFiles/tvviz_core.dir/partition.cpp.o.d"
  "CMakeFiles/tvviz_core.dir/perfmodel.cpp.o"
  "CMakeFiles/tvviz_core.dir/perfmodel.cpp.o.d"
  "CMakeFiles/tvviz_core.dir/pipesim.cpp.o"
  "CMakeFiles/tvviz_core.dir/pipesim.cpp.o.d"
  "CMakeFiles/tvviz_core.dir/session.cpp.o"
  "CMakeFiles/tvviz_core.dir/session.cpp.o.d"
  "libtvviz_core.a"
  "libtvviz_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvviz_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
