# Empty dependencies file for tvviz_core.
# This may be replaced when dependencies are built.
