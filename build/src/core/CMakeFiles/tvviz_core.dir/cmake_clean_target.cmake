file(REMOVE_RECURSE
  "libtvviz_core.a"
)
