file(REMOVE_RECURSE
  "libtvviz_render.a"
)
