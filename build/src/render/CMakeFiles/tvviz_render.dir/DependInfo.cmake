
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/render/ibr.cpp" "src/render/CMakeFiles/tvviz_render.dir/ibr.cpp.o" "gcc" "src/render/CMakeFiles/tvviz_render.dir/ibr.cpp.o.d"
  "/root/repo/src/render/image.cpp" "src/render/CMakeFiles/tvviz_render.dir/image.cpp.o" "gcc" "src/render/CMakeFiles/tvviz_render.dir/image.cpp.o.d"
  "/root/repo/src/render/raycast.cpp" "src/render/CMakeFiles/tvviz_render.dir/raycast.cpp.o" "gcc" "src/render/CMakeFiles/tvviz_render.dir/raycast.cpp.o.d"
  "/root/repo/src/render/shearwarp.cpp" "src/render/CMakeFiles/tvviz_render.dir/shearwarp.cpp.o" "gcc" "src/render/CMakeFiles/tvviz_render.dir/shearwarp.cpp.o.d"
  "/root/repo/src/render/spaceskip.cpp" "src/render/CMakeFiles/tvviz_render.dir/spaceskip.cpp.o" "gcc" "src/render/CMakeFiles/tvviz_render.dir/spaceskip.cpp.o.d"
  "/root/repo/src/render/transfer.cpp" "src/render/CMakeFiles/tvviz_render.dir/transfer.cpp.o" "gcc" "src/render/CMakeFiles/tvviz_render.dir/transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/field/CMakeFiles/tvviz_field.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tvviz_util.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/tvviz_codec_bytes.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
