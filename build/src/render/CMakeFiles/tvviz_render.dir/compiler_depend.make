# Empty compiler generated dependencies file for tvviz_render.
# This may be replaced when dependencies are built.
