file(REMOVE_RECURSE
  "CMakeFiles/tvviz_render.dir/ibr.cpp.o"
  "CMakeFiles/tvviz_render.dir/ibr.cpp.o.d"
  "CMakeFiles/tvviz_render.dir/image.cpp.o"
  "CMakeFiles/tvviz_render.dir/image.cpp.o.d"
  "CMakeFiles/tvviz_render.dir/raycast.cpp.o"
  "CMakeFiles/tvviz_render.dir/raycast.cpp.o.d"
  "CMakeFiles/tvviz_render.dir/shearwarp.cpp.o"
  "CMakeFiles/tvviz_render.dir/shearwarp.cpp.o.d"
  "CMakeFiles/tvviz_render.dir/spaceskip.cpp.o"
  "CMakeFiles/tvviz_render.dir/spaceskip.cpp.o.d"
  "CMakeFiles/tvviz_render.dir/transfer.cpp.o"
  "CMakeFiles/tvviz_render.dir/transfer.cpp.o.d"
  "libtvviz_render.a"
  "libtvviz_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvviz_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
