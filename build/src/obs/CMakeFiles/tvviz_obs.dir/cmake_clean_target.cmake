file(REMOVE_RECURSE
  "libtvviz_obs.a"
)
