file(REMOVE_RECURSE
  "CMakeFiles/tvviz_obs.dir/counters.cpp.o"
  "CMakeFiles/tvviz_obs.dir/counters.cpp.o.d"
  "CMakeFiles/tvviz_obs.dir/trace.cpp.o"
  "CMakeFiles/tvviz_obs.dir/trace.cpp.o.d"
  "libtvviz_obs.a"
  "libtvviz_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvviz_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
