# Empty dependencies file for tvviz_obs.
# This may be replaced when dependencies are built.
