# Empty dependencies file for tvviz_util.
# This may be replaced when dependencies are built.
