file(REMOVE_RECURSE
  "libtvviz_util.a"
)
