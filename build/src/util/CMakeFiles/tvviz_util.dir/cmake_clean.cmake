file(REMOVE_RECURSE
  "CMakeFiles/tvviz_util.dir/flags.cpp.o"
  "CMakeFiles/tvviz_util.dir/flags.cpp.o.d"
  "CMakeFiles/tvviz_util.dir/log.cpp.o"
  "CMakeFiles/tvviz_util.dir/log.cpp.o.d"
  "CMakeFiles/tvviz_util.dir/rng.cpp.o"
  "CMakeFiles/tvviz_util.dir/rng.cpp.o.d"
  "libtvviz_util.a"
  "libtvviz_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvviz_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
