file(REMOVE_RECURSE
  "libtvviz_vmp.a"
)
