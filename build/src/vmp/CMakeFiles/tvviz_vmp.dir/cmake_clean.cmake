file(REMOVE_RECURSE
  "CMakeFiles/tvviz_vmp.dir/communicator.cpp.o"
  "CMakeFiles/tvviz_vmp.dir/communicator.cpp.o.d"
  "CMakeFiles/tvviz_vmp.dir/mailbox.cpp.o"
  "CMakeFiles/tvviz_vmp.dir/mailbox.cpp.o.d"
  "libtvviz_vmp.a"
  "libtvviz_vmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvviz_vmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
