# Empty dependencies file for tvviz_vmp.
# This may be replaced when dependencies are built.
