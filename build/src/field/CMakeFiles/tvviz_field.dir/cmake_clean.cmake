file(REMOVE_RECURSE
  "CMakeFiles/tvviz_field.dir/decompose.cpp.o"
  "CMakeFiles/tvviz_field.dir/decompose.cpp.o.d"
  "CMakeFiles/tvviz_field.dir/delta_store.cpp.o"
  "CMakeFiles/tvviz_field.dir/delta_store.cpp.o.d"
  "CMakeFiles/tvviz_field.dir/generators.cpp.o"
  "CMakeFiles/tvviz_field.dir/generators.cpp.o.d"
  "CMakeFiles/tvviz_field.dir/minmax.cpp.o"
  "CMakeFiles/tvviz_field.dir/minmax.cpp.o.d"
  "CMakeFiles/tvviz_field.dir/noise.cpp.o"
  "CMakeFiles/tvviz_field.dir/noise.cpp.o.d"
  "CMakeFiles/tvviz_field.dir/preview.cpp.o"
  "CMakeFiles/tvviz_field.dir/preview.cpp.o.d"
  "CMakeFiles/tvviz_field.dir/store.cpp.o"
  "CMakeFiles/tvviz_field.dir/store.cpp.o.d"
  "CMakeFiles/tvviz_field.dir/striped.cpp.o"
  "CMakeFiles/tvviz_field.dir/striped.cpp.o.d"
  "libtvviz_field.a"
  "libtvviz_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvviz_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
