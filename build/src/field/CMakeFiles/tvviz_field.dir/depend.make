# Empty dependencies file for tvviz_field.
# This may be replaced when dependencies are built.
