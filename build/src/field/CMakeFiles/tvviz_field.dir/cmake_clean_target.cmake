file(REMOVE_RECURSE
  "libtvviz_field.a"
)
