
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/field/decompose.cpp" "src/field/CMakeFiles/tvviz_field.dir/decompose.cpp.o" "gcc" "src/field/CMakeFiles/tvviz_field.dir/decompose.cpp.o.d"
  "/root/repo/src/field/delta_store.cpp" "src/field/CMakeFiles/tvviz_field.dir/delta_store.cpp.o" "gcc" "src/field/CMakeFiles/tvviz_field.dir/delta_store.cpp.o.d"
  "/root/repo/src/field/generators.cpp" "src/field/CMakeFiles/tvviz_field.dir/generators.cpp.o" "gcc" "src/field/CMakeFiles/tvviz_field.dir/generators.cpp.o.d"
  "/root/repo/src/field/minmax.cpp" "src/field/CMakeFiles/tvviz_field.dir/minmax.cpp.o" "gcc" "src/field/CMakeFiles/tvviz_field.dir/minmax.cpp.o.d"
  "/root/repo/src/field/noise.cpp" "src/field/CMakeFiles/tvviz_field.dir/noise.cpp.o" "gcc" "src/field/CMakeFiles/tvviz_field.dir/noise.cpp.o.d"
  "/root/repo/src/field/preview.cpp" "src/field/CMakeFiles/tvviz_field.dir/preview.cpp.o" "gcc" "src/field/CMakeFiles/tvviz_field.dir/preview.cpp.o.d"
  "/root/repo/src/field/store.cpp" "src/field/CMakeFiles/tvviz_field.dir/store.cpp.o" "gcc" "src/field/CMakeFiles/tvviz_field.dir/store.cpp.o.d"
  "/root/repo/src/field/striped.cpp" "src/field/CMakeFiles/tvviz_field.dir/striped.cpp.o" "gcc" "src/field/CMakeFiles/tvviz_field.dir/striped.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codec/CMakeFiles/tvviz_codec_bytes.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tvviz_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
