# Empty dependencies file for tvviz_compositing.
# This may be replaced when dependencies are built.
