file(REMOVE_RECURSE
  "CMakeFiles/tvviz_compositing.dir/binary_swap.cpp.o"
  "CMakeFiles/tvviz_compositing.dir/binary_swap.cpp.o.d"
  "CMakeFiles/tvviz_compositing.dir/collective_compress.cpp.o"
  "CMakeFiles/tvviz_compositing.dir/collective_compress.cpp.o.d"
  "CMakeFiles/tvviz_compositing.dir/over.cpp.o"
  "CMakeFiles/tvviz_compositing.dir/over.cpp.o.d"
  "libtvviz_compositing.a"
  "libtvviz_compositing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvviz_compositing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
