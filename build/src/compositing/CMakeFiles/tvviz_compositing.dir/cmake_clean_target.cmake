file(REMOVE_RECURSE
  "libtvviz_compositing.a"
)
