
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/daemon.cpp" "src/net/CMakeFiles/tvviz_net.dir/daemon.cpp.o" "gcc" "src/net/CMakeFiles/tvviz_net.dir/daemon.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/tvviz_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/tvviz_net.dir/link.cpp.o.d"
  "/root/repo/src/net/protocol.cpp" "src/net/CMakeFiles/tvviz_net.dir/protocol.cpp.o" "gcc" "src/net/CMakeFiles/tvviz_net.dir/protocol.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/net/CMakeFiles/tvviz_net.dir/tcp.cpp.o" "gcc" "src/net/CMakeFiles/tvviz_net.dir/tcp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/obs/CMakeFiles/tvviz_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tvviz_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
