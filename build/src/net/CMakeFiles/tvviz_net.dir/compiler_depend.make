# Empty compiler generated dependencies file for tvviz_net.
# This may be replaced when dependencies are built.
