file(REMOVE_RECURSE
  "libtvviz_net.a"
)
