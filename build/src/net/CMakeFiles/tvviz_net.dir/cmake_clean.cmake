file(REMOVE_RECURSE
  "CMakeFiles/tvviz_net.dir/daemon.cpp.o"
  "CMakeFiles/tvviz_net.dir/daemon.cpp.o.d"
  "CMakeFiles/tvviz_net.dir/link.cpp.o"
  "CMakeFiles/tvviz_net.dir/link.cpp.o.d"
  "CMakeFiles/tvviz_net.dir/protocol.cpp.o"
  "CMakeFiles/tvviz_net.dir/protocol.cpp.o.d"
  "CMakeFiles/tvviz_net.dir/tcp.cpp.o"
  "CMakeFiles/tvviz_net.dir/tcp.cpp.o.d"
  "libtvviz_net.a"
  "libtvviz_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvviz_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
