# Empty compiler generated dependencies file for tvviz_codec_bytes.
# This may be replaced when dependencies are built.
