file(REMOVE_RECURSE
  "libtvviz_codec_bytes.a"
)
