
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/bwt.cpp" "src/codec/CMakeFiles/tvviz_codec_bytes.dir/bwt.cpp.o" "gcc" "src/codec/CMakeFiles/tvviz_codec_bytes.dir/bwt.cpp.o.d"
  "/root/repo/src/codec/byte_codec.cpp" "src/codec/CMakeFiles/tvviz_codec_bytes.dir/byte_codec.cpp.o" "gcc" "src/codec/CMakeFiles/tvviz_codec_bytes.dir/byte_codec.cpp.o.d"
  "/root/repo/src/codec/huffman.cpp" "src/codec/CMakeFiles/tvviz_codec_bytes.dir/huffman.cpp.o" "gcc" "src/codec/CMakeFiles/tvviz_codec_bytes.dir/huffman.cpp.o.d"
  "/root/repo/src/codec/lz.cpp" "src/codec/CMakeFiles/tvviz_codec_bytes.dir/lz.cpp.o" "gcc" "src/codec/CMakeFiles/tvviz_codec_bytes.dir/lz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tvviz_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
