file(REMOVE_RECURSE
  "CMakeFiles/tvviz_codec_bytes.dir/bwt.cpp.o"
  "CMakeFiles/tvviz_codec_bytes.dir/bwt.cpp.o.d"
  "CMakeFiles/tvviz_codec_bytes.dir/byte_codec.cpp.o"
  "CMakeFiles/tvviz_codec_bytes.dir/byte_codec.cpp.o.d"
  "CMakeFiles/tvviz_codec_bytes.dir/huffman.cpp.o"
  "CMakeFiles/tvviz_codec_bytes.dir/huffman.cpp.o.d"
  "CMakeFiles/tvviz_codec_bytes.dir/lz.cpp.o"
  "CMakeFiles/tvviz_codec_bytes.dir/lz.cpp.o.d"
  "libtvviz_codec_bytes.a"
  "libtvviz_codec_bytes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvviz_codec_bytes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
