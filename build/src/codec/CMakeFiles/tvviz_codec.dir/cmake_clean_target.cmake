file(REMOVE_RECURSE
  "libtvviz_codec.a"
)
