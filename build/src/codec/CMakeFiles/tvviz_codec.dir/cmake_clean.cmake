file(REMOVE_RECURSE
  "CMakeFiles/tvviz_codec.dir/framediff.cpp.o"
  "CMakeFiles/tvviz_codec.dir/framediff.cpp.o.d"
  "CMakeFiles/tvviz_codec.dir/image_codec.cpp.o"
  "CMakeFiles/tvviz_codec.dir/image_codec.cpp.o.d"
  "CMakeFiles/tvviz_codec.dir/jpeg.cpp.o"
  "CMakeFiles/tvviz_codec.dir/jpeg.cpp.o.d"
  "CMakeFiles/tvviz_codec.dir/motion.cpp.o"
  "CMakeFiles/tvviz_codec.dir/motion.cpp.o.d"
  "libtvviz_codec.a"
  "libtvviz_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvviz_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
