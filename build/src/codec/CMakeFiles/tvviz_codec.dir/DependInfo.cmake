
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/framediff.cpp" "src/codec/CMakeFiles/tvviz_codec.dir/framediff.cpp.o" "gcc" "src/codec/CMakeFiles/tvviz_codec.dir/framediff.cpp.o.d"
  "/root/repo/src/codec/image_codec.cpp" "src/codec/CMakeFiles/tvviz_codec.dir/image_codec.cpp.o" "gcc" "src/codec/CMakeFiles/tvviz_codec.dir/image_codec.cpp.o.d"
  "/root/repo/src/codec/jpeg.cpp" "src/codec/CMakeFiles/tvviz_codec.dir/jpeg.cpp.o" "gcc" "src/codec/CMakeFiles/tvviz_codec.dir/jpeg.cpp.o.d"
  "/root/repo/src/codec/motion.cpp" "src/codec/CMakeFiles/tvviz_codec.dir/motion.cpp.o" "gcc" "src/codec/CMakeFiles/tvviz_codec.dir/motion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codec/CMakeFiles/tvviz_codec_bytes.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/tvviz_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/render/CMakeFiles/tvviz_render.dir/DependInfo.cmake"
  "/root/repo/build/src/field/CMakeFiles/tvviz_field.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tvviz_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
