# Empty dependencies file for tvviz_codec.
# This may be replaced when dependencies are built.
